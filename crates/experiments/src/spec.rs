//! The declarative experiment vocabulary: [`ScenarioSpec`] and the types it
//! is assembled from.
//!
//! The paper's evaluation (§6.3, Figures 7–14) is a grid of *defense system*
//! × *scenario* cells over a small set of topologies and workloads. A
//! [`ScenarioSpec`] captures one cell declaratively — topology shape, scale,
//! defense, per-role traffic, attacker strategy — and
//! [`Runner`](crate::runner::Runner) turns it into a simulation and a
//! uniform [`Record`](crate::record::Record). Sweeps over many cells are
//! driven by [`SweepGrid`](crate::sweep::SweepGrid).

use netfence_core::config::Config;
use netfence_sim::prelude::*;
use netfence_systems::{
    strategic_request_priority, FairQueuingDefense, NetFenceDefense, StopItDefense, TvaDefense,
};

/// Which defense system a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefenseKind {
    /// NetFence (this paper).
    NetFence,
    /// TVA+ capability baseline.
    Tva,
    /// StopIt filter baseline.
    StopIt,
    /// Per-sender fair queuing at every link.
    Fq,
    /// No defense at all.
    None,
}

impl DefenseKind {
    /// All systems compared in the paper's figures.
    pub const ALL: [DefenseKind; 4] =
        [DefenseKind::Fq, DefenseKind::NetFence, DefenseKind::Tva, DefenseKind::StopIt];

    /// Every kind the factory can build, including `None`.
    pub const EVERY: [DefenseKind; 5] = [
        DefenseKind::Fq,
        DefenseKind::NetFence,
        DefenseKind::Tva,
        DefenseKind::StopIt,
        DefenseKind::None,
    ];

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::NetFence => "NetFence",
            DefenseKind::Tva => "TVA+",
            DefenseKind::StopIt => "StopIt",
            DefenseKind::Fq => "FQ",
            DefenseKind::None => "None",
        }
    }
}

/// How large a run is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Source ASes (the paper uses 10).
    pub src_ases: usize,
    /// Hosts per source AS (the paper uses 100; scaled down by default).
    pub hosts_per_as: usize,
    /// Simulated duration.
    pub sim_time: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Scale {
    /// A tiny scale for unit/integration tests and Criterion benches.
    pub fn tiny() -> Self {
        Scale { src_ases: 4, hosts_per_as: 4, sim_time: 40 * SEC, seed: 7 }
    }

    /// The default experiment scale (finishes in seconds per data point).
    pub fn default_scale() -> Self {
        Scale { src_ases: 10, hosts_per_as: 8, sim_time: 120 * SEC, seed: 7 }
    }

    /// Total simulated senders.
    pub fn senders(&self) -> usize {
        self.src_ases * self.hosts_per_as
    }
}

/// The shape of the network a scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// The Figure 8/9/11 dumbbell: `scale.src_ases` source ASes behind one
    /// bottleneck, a victim AS, and (with a colluding [`AttackTarget`])
    /// extra colluder ASes.
    Dumbbell,
    /// The Figure 10 parking lot: `R0 —L1→ R1 —L2→ R2` with three sender
    /// groups (A crosses both links, B only L2, C only L1). Every group gets
    /// its own victim and colluder destination.
    ParkingLot {
        /// Capacity of the first bottleneck (crossed by groups A and C).
        l1_bps: u64,
        /// Capacity of the second bottleneck (crossed by groups A and B).
        l2_bps: u64,
    },
}

/// How the bottleneck capacity of a [`TopologySpec::Dumbbell`] is stated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bandwidth {
    /// Absolute bits per second.
    Absolute(u64),
    /// Bits per second *per simulated sender* (the paper's scale-down trick:
    /// a fixed per-sender fair share regardless of how many hosts are
    /// actually simulated).
    PerSender(u64),
}

impl Bandwidth {
    /// Resolve to absolute bits per second for `senders` simulated senders.
    pub fn resolve(&self, senders: usize) -> u64 {
        match *self {
            Bandwidth::Absolute(bps) => bps,
            Bandwidth::PerSender(bps) => bps * senders as u64,
        }
    }
}

/// The traffic one role's hosts generate (§6.3's workload menu).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrafficSpec {
    /// Constant-bit-rate UDP.
    Cbr {
        /// Sending rate in bits per second.
        bps: u64,
    },
    /// On-off (shrew-style) UDP bursts.
    OnOff {
        /// Burst rate in bits per second.
        bps: u64,
        /// Burst length.
        on: Nanos,
        /// Silence length.
        off: Nanos,
    },
    /// A single long-running TCP flow (Figure 9a users).
    LongRunningTcp,
    /// Web-like TCP traffic — Pareto/exponential mixture sizes (Figure 9b).
    WebLike,
    /// Repeatedly transfer a fixed-size file over TCP with a gap between
    /// transfers (Figure 8 users: 20 KB, 5 s gap).
    RepeatedFile {
        /// Transfer size in bytes.
        bytes: u64,
        /// Idle gap between transfers.
        gap: Nanos,
    },
}

impl TrafficSpec {
    /// Constant-bit-rate UDP at `bps`.
    pub fn cbr(bps: u64) -> Self {
        TrafficSpec::Cbr { bps }
    }

    /// Synchronized on-off UDP bursts.
    pub fn on_off(bps: u64, on: Nanos, off: Nanos) -> Self {
        TrafficSpec::OnOff { bps, on, off }
    }

    /// Repeated fixed-size TCP transfers.
    pub fn repeated_file(bytes: u64, gap: Nanos) -> Self {
        TrafficSpec::RepeatedFile { bytes, gap }
    }

    /// Instantiate the flow for one `(src, dst)` member of a role.
    pub(crate) fn make_flow(
        &self,
        id: FlowId,
        src: HostAddr,
        dst: HostAddr,
        seed: u64,
    ) -> Box<dyn Flow> {
        match *self {
            TrafficSpec::Cbr { bps } => Box::new(UdpFlow::cbr(id, src, dst, bps)),
            TrafficSpec::OnOff { bps, on, off } => {
                Box::new(UdpFlow::new(id, src, dst, bps, UdpPattern::OnOff { on, off }))
            }
            TrafficSpec::LongRunningTcp => Box::new(TcpFlow::new(
                id,
                src,
                dst,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(seed),
            )),
            TrafficSpec::WebLike => Box::new(TcpFlow::new(
                id,
                src,
                dst,
                TcpWorkload::WebLike(WebWorkload::default()),
                TcpConfig::default(),
                SimRng::new(seed),
            )),
            TrafficSpec::RepeatedFile { bytes, gap } => Box::new(TcpFlow::new(
                id,
                src,
                dst,
                TcpWorkload::RepeatedFile { bytes, gap },
                TcpConfig::default(),
                SimRng::new(seed),
            )),
        }
    }
}

/// When the members of a role start sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StartSchedule {
    /// Everybody at t = 0 (the synchronized worst case of §5.2.1).
    Synchronized,
    /// Member `i` starts at `(i % groups) · step`.
    Staggered {
        /// Number of distinct start slots.
        groups: u64,
        /// Spacing between slots.
        step: Nanos,
    },
}

impl StartSchedule {
    /// Member `i` starts at `(i % groups) · step`.
    pub fn staggered(groups: u64, step: Nanos) -> Self {
        StartSchedule::Staggered { groups: groups.max(1), step }
    }

    /// Start time of role member `i`.
    pub fn start_of(&self, i: usize) -> Nanos {
        match *self {
            StartSchedule::Synchronized => 0,
            StartSchedule::Staggered { groups, step } => (i as u64 % groups.max(1)) * step,
        }
    }
}

/// Traffic plus start schedule for one role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoleSpec {
    /// What the role's hosts send.
    pub traffic: TrafficSpec,
    /// When they start.
    pub start: StartSchedule,
}

impl RoleSpec {
    /// A role sending `traffic` with the given schedule.
    pub fn new(traffic: TrafficSpec, start: StartSchedule) -> Self {
        RoleSpec { traffic, start }
    }
}

/// Who the attackers send to — the axis separating the paper's two attack
/// scenarios.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackTarget {
    /// Unwanted traffic (§6.3.1): attackers flood the victim, which
    /// identifies them and uses the defense to block them.
    Victim,
    /// Colluding receivers (§6.3.2): attackers pair with cooperating
    /// destinations, so capabilities and filters cannot help. On the
    /// dumbbell, `ases` extra colluder ASes are attached behind the
    /// bottleneck; on the parking lot every group already has its own
    /// colluder host and `ases` is ignored.
    Colluders {
        /// Colluder ASes attached to the dumbbell (≥ 1).
        ases: usize,
    },
}

/// Whether the victim exercises its sender-suppression mechanism
/// (feedback-withholding / capabilities / filters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Suppression {
    /// Suppress exactly when the attack targets the victim (the paper's
    /// setting: victims block identified attackers, colluders never do).
    #[default]
    Auto,
    /// Always suppress.
    On,
    /// Never suppress.
    Off,
}

/// The defense half of a cell: which system, how configured, and how much
/// of the network deploys it.
///
/// This is the unified factory every harness goes through —
/// [`DefenseSpec::build`] replaces the per-figure `make_defense` copies.
#[derive(Debug, Clone)]
pub struct DefenseSpec {
    /// Which system.
    pub kind: DefenseKind,
    /// Protocol parameters for NetFence runs.
    pub netfence: Config,
    /// Victim suppression policy.
    pub suppression: Suppression,
    /// Which ASes deploy the defense. For [`Placement::FirstEdgeAses`] and
    /// [`Placement::Seeded`] the [`Runner`](crate::runner::Runner)
    /// interprets `coverage` as the fraction of *source* ASes that deploy;
    /// destination and transit ASes always deploy when coverage is nonzero
    /// (the "infrastructure first" adoption story of §5.3).
    pub deployment: DeploymentSpec,
}

impl DefenseSpec {
    /// A defense with the experiment-default NetFence configuration,
    /// deployed everywhere.
    pub fn new(kind: DefenseKind) -> Self {
        DefenseSpec {
            kind,
            netfence: netfence_config(),
            suppression: Suppression::Auto,
            deployment: DeploymentSpec::full(),
        }
    }

    /// Override the NetFence protocol configuration.
    pub fn with_config(mut self, cfg: Config) -> Self {
        self.netfence = cfg;
        self
    }

    /// Override the suppression policy.
    pub fn with_suppression(mut self, s: Suppression) -> Self {
        self.suppression = s;
        self
    }

    /// Override the deployment extent.
    pub fn with_deployment(mut self, d: DeploymentSpec) -> Self {
        self.deployment = d;
        self
    }

    /// Construct the defense factory for a built scenario; the
    /// [`Runner`](crate::runner::Runner) deploys it according to
    /// [`DefenseSpec::deployment`]. `ctx` carries the role assignment the
    /// suppression mechanisms need; each [`SuppressionGroup`] is one victim
    /// with the senders it knows about (the dumbbell has one group, the
    /// parking lot three).
    pub fn build(&self, ctx: &DefenseContext<'_>) -> Box<dyn DefenseFactory> {
        let suppress = match self.suppression {
            Suppression::Auto => ctx.attack_on_victim,
            Suppression::On => true,
            Suppression::Off => false,
        } && !ctx.groups.is_empty();
        match self.kind {
            DefenseKind::None => Box::new(NoDefense),
            DefenseKind::Fq => Box::new(FairQueuingDefense::new()),
            DefenseKind::StopIt => {
                let mut s = StopItDefense::new();
                if suppress {
                    for g in &ctx.groups {
                        s.auto_filter(g.victim);
                        for &u in g.users {
                            s.allow(g.victim, u);
                        }
                    }
                }
                Box::new(s)
            }
            DefenseKind::Tva => {
                let mut t = TvaDefense::new();
                if suppress {
                    for g in &ctx.groups {
                        t.deny_by_default(g.victim);
                        for &u in g.users {
                            t.allow(g.victim, u);
                        }
                    }
                }
                Box::new(t)
            }
            DefenseKind::NetFence => {
                let mut n = NetFenceDefense::new(self.netfence.clone());
                if suppress {
                    let total: u64 = ctx.groups.iter().map(|g| g.attackers.len() as u64).sum();
                    let prio = attacker_request_priority(&self.netfence, total, ctx.bottleneck_bps);
                    for g in &ctx.groups {
                        for &a in g.attackers {
                            n.suppress_sender(g.victim, a);
                            n.set_request_priority(a, prio);
                        }
                    }
                }
                Box::new(n)
            }
        }
    }
}

/// One victim and the senders it can tell apart, for suppression purposes.
#[derive(Debug, Clone)]
pub struct SuppressionGroup<'a> {
    /// The victim destination.
    pub victim: HostAddr,
    /// Legitimate senders the victim whitelists.
    pub users: &'a [HostAddr],
    /// Attackers the victim blocks.
    pub attackers: &'a [HostAddr],
}

/// Role assignment handed to [`DefenseSpec::build`] by the
/// [`Runner`](crate::runner::Runner).
#[derive(Debug, Clone, Default)]
pub struct DefenseContext<'a> {
    /// Victims with their known senders (empty disables suppression).
    pub groups: Vec<SuppressionGroup<'a>>,
    /// Capacity of the (tightest) bottleneck, bits per second.
    pub bottleneck_bps: u64,
    /// Whether the attack is aimed at the victim (resolves
    /// [`Suppression::Auto`]).
    pub attack_on_victim: bool,
}

/// The NetFence protocol configuration used by the experiments: Figure 3
/// parameters with `Ta`/`Tb` shortened so that simulated minutes (rather
/// than hours) exercise cycle termination.
pub fn netfence_config() -> Config {
    Config { ta: 600 * SEC, tb: 600 * SEC, ..Config::default() }
}

/// The strategic request priority attackers pick in the unwanted-traffic
/// scenario (§6.3.1): the highest level at which their aggregate traffic can
/// still saturate the bottleneck's request channel, under the protocol
/// parameters `cfg` the defense actually runs with.
pub fn attacker_request_priority(cfg: &Config, attackers: u64, bottleneck_bps: u64) -> u8 {
    strategic_request_priority(
        attackers,
        bottleneck_bps as f64 * cfg.request_channel_fraction,
        92.0,
        cfg.request_tokens_per_sec(),
        cfg.max_request_priority,
    )
}

/// One declarative experiment cell: topology × scale × defense × per-role
/// traffic × attacker strategy.
///
/// Build one with [`ScenarioSpec::dumbbell`] or
/// [`ScenarioSpec::parking_lot`] and the chained setters, hand it to a
/// [`Runner`](crate::runner::Runner), get a
/// [`Record`](crate::record::Record) back.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// Scenario name (carried into the [`Record`](crate::record::Record)).
    pub name: String,
    /// Network shape.
    pub topology: TopologySpec,
    /// Simulated size and duration.
    pub scale: Scale,
    /// Defense under test.
    pub defense: DefenseSpec,
    /// Dumbbell bottleneck capacity (ignored by the parking lot, whose link
    /// capacities live in its [`TopologySpec`]).
    pub bandwidth: Bandwidth,
    /// Legitimate senders per source AS (dumbbell) or per group (parking
    /// lot); the remaining hosts are attackers.
    pub legit_per_as: usize,
    /// What legitimate users send, and when.
    pub users: RoleSpec,
    /// What attackers send, and when.
    pub attackers: RoleSpec,
    /// Who the attackers aim at.
    pub attack_target: AttackTarget,
}

impl ScenarioSpec {
    /// A dumbbell scenario with the paper's defaults: NetFence defended, one
    /// legitimate user per AS sending long-running TCP (staggered starts),
    /// the rest 1 Mbps CBR attackers flooding the victim, 100 kbps
    /// per-sender fair share.
    pub fn dumbbell(scale: Scale) -> Self {
        ScenarioSpec {
            name: "dumbbell".to_string(),
            topology: TopologySpec::Dumbbell,
            scale,
            defense: DefenseSpec::new(DefenseKind::NetFence),
            bandwidth: Bandwidth::PerSender(100_000),
            legit_per_as: 1,
            users: RoleSpec::new(
                TrafficSpec::LongRunningTcp,
                StartSchedule::staggered(20, 50 * MILLI),
            ),
            attackers: RoleSpec::new(
                TrafficSpec::cbr(1_000_000),
                StartSchedule::staggered(100, MILLI),
            ),
            attack_target: AttackTarget::Victim,
        }
    }

    /// A parking-lot scenario (Figure 10): three groups of
    /// `scale.hosts_per_as` senders, colluding attack by default.
    pub fn parking_lot(scale: Scale, l1_bps: u64, l2_bps: u64) -> Self {
        let mut spec = ScenarioSpec::dumbbell(scale);
        spec.name = "parking-lot".to_string();
        spec.topology = TopologySpec::ParkingLot { l1_bps, l2_bps };
        spec.legit_per_as = (scale.hosts_per_as.max(4) / 4).max(1);
        spec.attackers.start = StartSchedule::staggered(50, MILLI);
        spec.attack_target = AttackTarget::Colluders { ases: 1 };
        spec
    }

    /// Name the scenario.
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Select the defense system (experiment-default configuration).
    pub fn defense(mut self, kind: DefenseKind) -> Self {
        let suppression = self.defense.suppression;
        self.defense = DefenseSpec::new(kind).with_suppression(suppression);
        self
    }

    /// Replace the whole defense spec.
    pub fn defense_spec(mut self, defense: DefenseSpec) -> Self {
        self.defense = defense;
        self
    }

    /// Set the deployment extent of the defense.
    pub fn deployment(mut self, d: DeploymentSpec) -> Self {
        self.defense.deployment = d;
        self
    }

    /// Deploy the defense on only the first `coverage` fraction of source
    /// ASes (destination and transit ASes deploy whenever `coverage > 0`).
    pub fn coverage(mut self, coverage: f64) -> Self {
        self.defense.deployment = DeploymentSpec::coverage(coverage);
        self
    }

    /// Dumbbell bottleneck capacity as a per-sender fair share.
    pub fn fair_share(mut self, bps: u64) -> Self {
        self.bandwidth = Bandwidth::PerSender(bps);
        self
    }

    /// Dumbbell bottleneck capacity in absolute bits per second.
    pub fn bottleneck_bps(mut self, bps: u64) -> Self {
        self.bandwidth = Bandwidth::Absolute(bps);
        self
    }

    /// Legitimate senders per source AS / group.
    pub fn legit_per_as(mut self, n: usize) -> Self {
        self.legit_per_as = n.max(1);
        self
    }

    /// Legitimate senders as a fraction of each AS's hosts (at least one).
    pub fn legit_fraction(mut self, f: f64) -> Self {
        let hosts = match self.topology {
            TopologySpec::Dumbbell => self.scale.hosts_per_as,
            TopologySpec::ParkingLot { .. } => self.scale.hosts_per_as.max(4),
        };
        self.legit_per_as = ((hosts as f64 * f) as usize).max(1);
        self
    }

    /// What the users send.
    pub fn users(mut self, traffic: TrafficSpec) -> Self {
        self.users.traffic = traffic;
        self
    }

    /// When the users start.
    pub fn user_start(mut self, start: StartSchedule) -> Self {
        self.users.start = start;
        self
    }

    /// What the attackers send, and at whom.
    pub fn attackers(mut self, traffic: TrafficSpec, target: AttackTarget) -> Self {
        self.attackers.traffic = traffic;
        self.attack_target = target;
        self
    }

    /// When the attackers start.
    pub fn attacker_start(mut self, start: StartSchedule) -> Self {
        self.attackers.start = start;
        self
    }

    /// Override the simulated duration.
    pub fn sim_time(mut self, t: Nanos) -> Self {
        self.scale.sim_time = t;
        self
    }

    /// Override the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.scale.seed = seed;
        self
    }

    /// The resolved dumbbell bottleneck capacity.
    pub fn resolved_bottleneck_bps(&self) -> u64 {
        self.bandwidth.resolve(self.scale.senders())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_builder_defaults_and_overrides() {
        let spec = ScenarioSpec::dumbbell(Scale::tiny())
            .named("t")
            .defense(DefenseKind::StopIt)
            .fair_share(200_000)
            .legit_per_as(2)
            .users(TrafficSpec::repeated_file(20_000, 5 * SEC))
            .attackers(TrafficSpec::cbr(500_000), AttackTarget::Victim)
            .attacker_start(StartSchedule::Synchronized)
            .seed(42)
            .sim_time(10 * SEC);
        assert_eq!(spec.name, "t");
        assert_eq!(spec.defense.kind, DefenseKind::StopIt);
        assert_eq!(spec.resolved_bottleneck_bps(), 200_000 * 16);
        assert_eq!(spec.legit_per_as, 2);
        assert_eq!(spec.users.traffic, TrafficSpec::RepeatedFile { bytes: 20_000, gap: 5 * SEC });
        assert_eq!(spec.attackers.start, StartSchedule::Synchronized);
        assert_eq!(spec.scale.seed, 42);
        assert_eq!(spec.scale.sim_time, 10 * SEC);
    }

    #[test]
    fn legit_fraction_rounds_down_but_keeps_one() {
        let spec = ScenarioSpec::dumbbell(Scale::tiny()).legit_fraction(0.25);
        assert_eq!(spec.legit_per_as, 1);
        let spec =
            ScenarioSpec::dumbbell(Scale { hosts_per_as: 8, ..Scale::tiny() }).legit_fraction(0.25);
        assert_eq!(spec.legit_per_as, 2);
        let spec = ScenarioSpec::dumbbell(Scale::tiny()).legit_fraction(0.0);
        assert_eq!(spec.legit_per_as, 1);
    }

    #[test]
    fn start_schedules() {
        let s = StartSchedule::staggered(10, 100 * MILLI);
        assert_eq!(s.start_of(0), 0);
        assert_eq!(s.start_of(3), 300 * MILLI);
        assert_eq!(s.start_of(13), 300 * MILLI);
        assert_eq!(StartSchedule::Synchronized.start_of(99), 0);
    }

    #[test]
    fn bandwidth_resolution() {
        assert_eq!(Bandwidth::Absolute(5).resolve(100), 5);
        assert_eq!(Bandwidth::PerSender(5).resolve(100), 500);
    }

    #[test]
    fn strategic_priority_is_reasonable() {
        let p = attacker_request_priority(&netfence_config(), 90, 10_000_000);
        assert!((1..=12).contains(&p), "priority {p}");
    }
}
