//! Figure 10: colluding attacks on a parking-lot topology with two
//! bottleneck links.
//!
//! Three sender groups share two links: Group A crosses both `L1` and `L2`,
//! Group B only `L2`, Group C only `L1`. Each group is 75% attackers / 25%
//! users. The figure reports the average throughput of Group-A users and
//! Group-A attackers for three capacity pairs; the core (single-feedback)
//! NetFence design under-serves Group-A senders when `C_L1 < C_L2` because
//! their flows keep switching between the two rate limiters (§4.3.5).

use netfence_sim::prelude::*;

use crate::prelude::*;

/// One capacity configuration of Figure 10/13/14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityCase {
    /// Capacity of the first bottleneck (crossed by groups A and C).
    pub l1_bps: u64,
    /// Capacity of the second bottleneck (crossed by groups A and B).
    pub l2_bps: u64,
    /// Label matching the paper's x-axis (e.g. "160M-160M").
    pub label: &'static str,
}

/// One result row.
#[derive(Debug, Clone)]
pub struct Fig10Point {
    /// Which capacity configuration.
    pub case: CapacityCase,
    /// The defense system.
    pub system: DefenseKind,
    /// Average Group-A legitimate user throughput, bits per second.
    pub group_a_user_bps: f64,
    /// Average Group-A attacker throughput, bits per second.
    pub group_a_attacker_bps: f64,
    /// The per-sender max-min fair share on the tighter bottleneck.
    pub fair_share_bps: f64,
}

/// The three capacity configurations of Figure 10, scaled so that a Group-A
/// sender's max-min fair share is `fair_share_bps` in the symmetric case.
pub fn capacity_cases(senders_per_link: usize, fair_share_bps: u64) -> [CapacityCase; 3] {
    let base = fair_share_bps * senders_per_link as u64;
    let bigger = base * 3 / 2;
    [
        CapacityCase { l1_bps: base, l2_bps: base, label: "160M-160M" },
        CapacityCase { l1_bps: bigger, l2_bps: base, label: "240M-160M" },
        CapacityCase { l1_bps: base, l2_bps: bigger, label: "160M-240M" },
    ]
}

/// The Figure 10 scenario: the parking lot with 25% long-running TCP users
/// per group and colluding CBR attackers.
pub fn fig10_spec(scale: &Scale, system: DefenseKind, case: CapacityCase) -> ScenarioSpec {
    ScenarioSpec::parking_lot(*scale, case.l1_bps, case.l2_bps)
        .named("fig10-parking-lot")
        .defense(system)
        .users(TrafficSpec::LongRunningTcp)
        .user_start(StartSchedule::staggered(20, 50 * MILLI))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: 1 })
        .attacker_start(StartSchedule::staggered(50, MILLI))
}

fn to_point(case: CapacityCase, system: DefenseKind, r: &Record) -> Fig10Point {
    Fig10Point {
        case,
        system,
        group_a_user_bps: r.group_avg_bps("A-users"),
        group_a_attacker_bps: r.group_avg_bps("A-attackers"),
        fair_share_bps: r.fair_share_bps,
    }
}

/// Run one capacity case of Figure 10.
pub fn run_fig10_case(scale: &Scale, system: DefenseKind, case: CapacityCase) -> Fig10Point {
    let r = Runner::new(fig10_spec(scale, system, case)).run();
    to_point(case, system, &r)
}

/// Run all three capacity cases with NetFence (the paper's Figure 10 only
/// shows NetFence), in parallel.
pub fn run_fig10(scale: &Scale) -> Vec<Fig10Point> {
    let per_group = scale.hosts_per_as.max(4);
    SweepGrid::new([DefenseKind::NetFence], capacity_cases(2 * per_group, 80_000).to_vec())
        .run_auto(|system, case| fig10_spec(scale, system, *case))
        .iter()
        .map(|c| to_point(c.point, c.system, &c.record))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netfence_sim::time::SEC;

    #[test]
    fn symmetric_case_gives_group_a_a_nontrivial_share() {
        let scale = Scale { src_ases: 1, hosts_per_as: 6, sim_time: 100 * SEC, seed: 3 };
        let per_group = scale.hosts_per_as.max(4);
        let case = capacity_cases(2 * per_group, 80_000)[0];
        let p = run_fig10_case(&scale, DefenseKind::NetFence, case);
        // Group-A senders are not starved in the symmetric case: the
        // attackers (full-demand UDP) obtain a meaningful fraction of their
        // fair share, and nobody exceeds it by much. The paper's Figure 10
        // also shows the Group-A TCP user below the Group-A attacker.
        assert!(
            p.group_a_attacker_bps > 0.3 * p.fair_share_bps,
            "attacker {} vs fair {}",
            p.group_a_attacker_bps,
            p.fair_share_bps
        );
        assert!(
            p.group_a_attacker_bps < 2.0 * p.fair_share_bps,
            "attacker {} should stay near the fair share {}",
            p.group_a_attacker_bps,
            p.fair_share_bps
        );
        assert!(p.group_a_user_bps >= 0.0);
    }
}
