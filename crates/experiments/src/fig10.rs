//! Figure 10: colluding attacks on a parking-lot topology with two
//! bottleneck links.
//!
//! Three sender groups share two links: Group A crosses both `L1` and `L2`,
//! Group B only `L2`, Group C only `L1`. Each group is 75% attackers / 25%
//! users. The figure reports the average throughput of Group-A users and
//! Group-A attackers for three capacity pairs; the core (single-feedback)
//! NetFence design under-serves Group-A senders when `C_L1 < C_L2` because
//! their flows keep switching between the two rate limiters (§4.3.5).

use netfence_sim::prelude::*;

use crate::scenario::{make_defense, netfence_config, DefenseKind, Scale};
use netfence_systems::NetFenceDefense;

/// One capacity configuration of Figure 10/13/14.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityCase {
    /// Capacity of the first bottleneck (crossed by groups A and C).
    pub l1_bps: u64,
    /// Capacity of the second bottleneck (crossed by groups A and B).
    pub l2_bps: u64,
    /// Label matching the paper's x-axis (e.g. "160M-160M").
    pub label: &'static str,
}

/// One result row.
#[derive(Debug, Clone)]
pub struct Fig10Point {
    /// Which capacity configuration.
    pub case: CapacityCase,
    /// The defense system.
    pub system: DefenseKind,
    /// Average Group-A legitimate user throughput, bits per second.
    pub group_a_user_bps: f64,
    /// Average Group-A attacker throughput, bits per second.
    pub group_a_attacker_bps: f64,
    /// The per-sender max-min fair share on the tighter bottleneck.
    pub fair_share_bps: f64,
}

/// A built parking-lot scenario.
#[derive(Debug)]
pub struct ParkingLot {
    /// The network.
    pub net: Network,
    /// Link address of L1.
    pub l1: LinkAddr,
    /// Link address of L2.
    pub l2: LinkAddr,
    /// Group A (crosses both links): (users, attackers, victim, colluder).
    pub group_a: Group,
    /// Group B (crosses only L2).
    pub group_b: Group,
    /// Group C (crosses only L1).
    pub group_c: Group,
}

/// One sender group of the parking-lot scenario.
#[derive(Debug, Clone)]
pub struct Group {
    /// Legitimate senders.
    pub users: Vec<HostAddr>,
    /// Attackers.
    pub attackers: Vec<HostAddr>,
    /// The group's victim destination (users send here).
    pub victim: HostAddr,
    /// The group's colluder destination (attackers send here).
    pub colluder: HostAddr,
}

/// Build the parking-lot topology: `R0 —L1→ R1 —L2→ R2`, with each group's
/// senders and destinations attached so that the paper's crossing pattern
/// holds.
pub fn build_parking_lot(per_group: usize, legit_per_group: usize, l1_bps: u64, l2_bps: u64) -> ParkingLot {
    let mut b = Network::builder();
    let r0 = b.router(100, false);
    let r1 = b.router(101, false);
    let r2 = b.router(102, false);
    let access_cap = (l1_bps.max(l2_bps) * 10).max(100_000_000);
    let l1_idx = b.link(r0, r1, l1_bps, 10 * MILLI, QueueKind::Red);
    b.link(r1, r0, l1_bps, 10 * MILLI, QueueKind::Red);
    let l2_idx = b.link(r1, r2, l2_bps, 10 * MILLI, QueueKind::Red);
    b.link(r2, r1, l2_bps, 10 * MILLI, QueueKind::Red);

    let make_group = |asn_src: u32,
                          asn_dst: u32,
                          src_router_target,
                          dst_router_target,
                          base_addr: u32,
                          b: &mut NetworkBuilder|
     -> Group {
        let ra = b.router(asn_src, true);
        b.duplex(ra, src_router_target, access_cap, 5 * MILLI, QueueKind::DropTail);
        let rd = b.router(asn_dst, true);
        b.duplex(dst_router_target, rd, access_cap, 5 * MILLI, QueueKind::DropTail);
        let mut users = Vec::new();
        let mut attackers = Vec::new();
        for h in 0..per_group {
            let addr = base_addr + h as u32 + 1;
            b.host(addr, asn_src, ra, access_cap, MILLI);
            if h < legit_per_group {
                users.push(addr);
            } else {
                attackers.push(addr);
            }
        }
        let victim = base_addr + 0xF1;
        let colluder = base_addr + 0xF2;
        b.host(victim, asn_dst, rd, access_cap, MILLI);
        b.host(colluder, asn_dst, rd, access_cap, MILLI);
        Group { users, attackers, victim, colluder }
    };

    // Group A: sources before L1, destinations after L2.
    let group_a = make_group(1, 11, r0, r2, 0x0A01_0000, &mut b);
    // Group B: sources before L2 (at R1), destinations after L2.
    let group_b = make_group(2, 12, r1, r2, 0x0A02_0000, &mut b);
    // Group C: sources before L1, destinations between L1 and L2 (at R1).
    let group_c = make_group(3, 13, r0, r1, 0x0A03_0000, &mut b);

    let net = b.build();
    let l1 = net.links[l1_idx].addr;
    let l2 = net.links[l2_idx].addr;
    ParkingLot { net, l1, l2, group_a, group_b, group_c }
}

/// The three capacity configurations of Figure 10, scaled so that a Group-A
/// sender's max-min fair share is `fair_share_bps` in the symmetric case.
pub fn capacity_cases(senders_per_link: usize, fair_share_bps: u64) -> [CapacityCase; 3] {
    let base = fair_share_bps * senders_per_link as u64;
    let bigger = base * 3 / 2;
    [
        CapacityCase { l1_bps: base, l2_bps: base, label: "160M-160M" },
        CapacityCase { l1_bps: bigger, l2_bps: base, label: "240M-160M" },
        CapacityCase { l1_bps: base, l2_bps: bigger, label: "160M-240M" },
    ]
}

/// Run one capacity case of Figure 10.
pub fn run_fig10_case(scale: &Scale, system: DefenseKind, case: CapacityCase) -> Fig10Point {
    // Group size scales with the configured hosts-per-AS (25% users as in
    // the paper).
    let per_group = scale.hosts_per_as.max(4);
    let legit = (per_group / 4).max(1);
    let lot = build_parking_lot(per_group, legit, case.l1_bps, case.l2_bps);
    // Group A + Group C cross L1; Group A + Group B cross L2.
    let crossing = 2 * per_group;
    let fair_share = case.l1_bps.min(case.l2_bps) as f64 / crossing as f64;

    let defense: Box<dyn DefenseSystem> = match system {
        DefenseKind::NetFence => Box::new(NetFenceDefense::new(netfence_config())),
        other => {
            // Reuse the generic factory for baselines (no victim suppression
            // in the colluding scenario).
            let dummy = crate::scenario::build_dumbbell(scale, 1, case.l1_bps, 1);
            make_defense(other, &dummy, false)
        }
    };

    let mut sim = Simulator::new(
        build_parking_lot(per_group, legit, case.l1_bps, case.l2_bps).net,
        defense,
        SimConfig { end_time: scale.sim_time, seed: scale.seed, ..Default::default() },
    );

    let mut a_users = Vec::new();
    let mut a_attackers = Vec::new();
    let mut seed = scale.seed;
    let mut add_group = |sim: &mut Simulator, g: &Group, users_out: Option<&mut Vec<FlowId>>, attackers_out: Option<&mut Vec<FlowId>>| {
        let mut users_tmp = Vec::new();
        let mut attackers_tmp = Vec::new();
        for (i, &u) in g.users.iter().enumerate() {
            seed += 1;
            let victim = g.victim;
            let s = seed;
            users_tmp.push(sim.add_flow((i as u64 % 20) * 50 * MILLI, |id| {
                Box::new(TcpFlow::new(
                    id,
                    u,
                    victim,
                    TcpWorkload::LongRunning,
                    TcpConfig::default(),
                    SimRng::new(s),
                ))
            }));
        }
        for (i, &a) in g.attackers.iter().enumerate() {
            let colluder = g.colluder;
            attackers_tmp.push(sim.add_flow((i as u64 % 50) * MILLI, |id| {
                Box::new(UdpFlow::cbr(id, a, colluder, 1_000_000))
            }));
        }
        if let Some(out) = users_out {
            *out = users_tmp;
        }
        if let Some(out) = attackers_out {
            *out = attackers_tmp;
        }
    };
    add_group(&mut sim, &lot.group_a, Some(&mut a_users), Some(&mut a_attackers));
    add_group(&mut sim, &lot.group_b, None, None);
    add_group(&mut sim, &lot.group_c, None, None);

    sim.run();
    let avg = |flows: &[FlowId]| -> f64 {
        if flows.is_empty() {
            return 0.0;
        }
        flows.iter().map(|&f| sim.progress(f).goodput_bps(0, scale.sim_time)).sum::<f64>()
            / flows.len() as f64
    };
    Fig10Point {
        case,
        system,
        group_a_user_bps: avg(&a_users),
        group_a_attacker_bps: avg(&a_attackers),
        fair_share_bps: fair_share,
    }
}

/// Run all three capacity cases with NetFence (the paper's Figure 10 only
/// shows NetFence).
pub fn run_fig10(scale: &Scale) -> Vec<Fig10Point> {
    let per_group = scale.hosts_per_as.max(4);
    capacity_cases(2 * per_group, 80_000)
        .into_iter()
        .map(|case| run_fig10_case(scale, DefenseKind::NetFence, case))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parking_lot_routing_crosses_the_right_links() {
        let lot = build_parking_lot(4, 1, 1_000_000, 1_000_000);
        let l1 = lot.net.link_by_addr(lot.l1).unwrap();
        let l2 = lot.net.link_by_addr(lot.l2).unwrap();
        let crosses = |src: HostAddr, dst: HostAddr, link: usize| -> bool {
            let mut node = lot.net.host_node(src);
            for _ in 0..12 {
                match lot.net.next_hop(node, dst) {
                    Some(l) => {
                        if l == link {
                            return true;
                        }
                        node = lot.net.links[l].to;
                    }
                    None => return false,
                }
            }
            false
        };
        // Group A crosses both links.
        assert!(crosses(lot.group_a.users[0], lot.group_a.victim, l1));
        assert!(crosses(lot.group_a.users[0], lot.group_a.victim, l2));
        // Group B crosses only L2, group C only L1.
        assert!(!crosses(lot.group_b.attackers[0], lot.group_b.colluder, l1));
        assert!(crosses(lot.group_b.attackers[0], lot.group_b.colluder, l2));
        assert!(crosses(lot.group_c.attackers[0], lot.group_c.colluder, l1));
        assert!(!crosses(lot.group_c.attackers[0], lot.group_c.colluder, l2));
    }

    #[test]
    fn symmetric_case_gives_group_a_a_nontrivial_share() {
        let scale = Scale { src_ases: 1, hosts_per_as: 6, sim_time: 100 * SEC, seed: 3 };
        let per_group = scale.hosts_per_as.max(4);
        let case = capacity_cases(2 * per_group, 80_000)[0];
        let p = run_fig10_case(&scale, DefenseKind::NetFence, case);
        // Group-A senders are not starved in the symmetric case: the
        // attackers (full-demand UDP) obtain a meaningful fraction of their
        // fair share, and nobody exceeds it by much. The paper's Figure 10
        // also shows the Group-A TCP user below the Group-A attacker.
        assert!(
            p.group_a_attacker_bps > 0.3 * p.fair_share_bps,
            "attacker {} vs fair {}",
            p.group_a_attacker_bps,
            p.fair_share_bps
        );
        assert!(
            p.group_a_attacker_bps < 2.0 * p.fair_share_bps,
            "attacker {} should stay near the fair share {}",
            p.group_a_attacker_bps,
            p.fair_share_bps
        );
        assert!(p.group_a_user_bps >= 0.0);
    }
}
