//! The incremental-deployment sweep: deploying-AS fraction vs legitimate
//! goodput.
//!
//! NetFence's deployment story (§5.3) is that the defense is valuable
//! before it is universal: the destination side and the transit core deploy
//! first, and every source AS that adopts buys its own customers better
//! service because deployed routers demote legacy traffic below NetFence
//! traffic. This sweep quantifies that adoption incentive for every
//! [`DefenseKind`]: a colluding flood on the dumbbell, with the fraction of
//! deploying source ASes swept from 0 (pure legacy Internet) to 1
//! (universal deployment), reporting the average legitimate-user goodput,
//! the average attacker goodput and the deployment extent.
//!
//! TVA-style capability systems and StopIt-style filter systems are also
//! evaluated under incremental deployment in the related work; running all
//! systems through the same sweep makes the comparison direct.

use netfence_sim::prelude::*;

use crate::prelude::*;

/// One point of the incremental-deployment sweep.
#[derive(Debug, Clone)]
pub struct DeploymentPoint {
    /// Fraction of source ASes that deploy.
    pub coverage: f64,
    /// The defense system.
    pub system: DefenseKind,
    /// Average legitimate-user goodput, bits per second.
    pub avg_user_bps: f64,
    /// Average attacker goodput, bits per second.
    pub avg_attacker_bps: f64,
    /// ASes that actually deployed (from the typed report).
    pub deployed_ases: usize,
    /// Total ASes in the network.
    pub total_ases: usize,
}

/// The default coverage sweep (the deploying-source-AS fractions).
pub const COVERAGES: [f64; 5] = [0.0, 0.25, 0.5, 0.75, 1.0];

/// The sweep scenario: the Figure 8 unwanted-flood setting under partial
/// deployment. One legitimate user per source AS repeatedly fetches a
/// 20 KB file from the victim (demand-bounded, so a protected user's
/// goodput measures *service quality*, not leftover bandwidth); the rest
/// flood the victim with 1 Mbps CBR. With `coverage` of the source ASes
/// deploying, users in deployed ASes are protected (their AS polices its
/// own attackers, the deployed bottleneck demotes legacy floods below
/// defended traffic) while users in legacy ASes share the legacy channel
/// with the legacy flood — so average legitimate goodput grows with every
/// adopting AS, which is precisely the §5.3 adoption incentive.
pub fn deployment_spec(scale: &Scale, system: DefenseKind, coverage: f64) -> ScenarioSpec {
    ScenarioSpec::dumbbell(*scale)
        .named("incremental-deployment")
        .defense(system)
        .coverage(coverage)
        .fair_share(100_000)
        .legit_per_as(1)
        .users(TrafficSpec::repeated_file(20_000, 2 * SEC))
        .user_start(StartSchedule::staggered(10, 100 * MILLI))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim)
        .attacker_start(StartSchedule::staggered(100, MILLI))
}

fn to_point(coverage: f64, system: DefenseKind, r: &Record) -> DeploymentPoint {
    DeploymentPoint {
        coverage,
        system,
        avg_user_bps: r.avg_user_bps(),
        avg_attacker_bps: r.avg_attacker_bps(),
        deployed_ases: r.report.deployed_ases,
        total_ases: r.report.total_ases,
    }
}

/// Run one (system, coverage) cell.
pub fn run_deployment_cell(scale: &Scale, system: DefenseKind, coverage: f64) -> DeploymentPoint {
    let r = Runner::new(deployment_spec(scale, system, coverage)).run();
    to_point(coverage, system, &r)
}

/// Run the full sweep for the given systems (cells in parallel; point-major
/// order, i.e. all systems at coverage 0, then all systems at 0.25, …).
pub fn run_deployment_sweep(
    scale: &Scale,
    systems: &[DefenseKind],
    coverages: &[f64],
) -> Vec<DeploymentPoint> {
    // f64 is not hashable/ordered for the grid point; carry basis points.
    let points: Vec<u64> = coverages.iter().map(|c| (c * 10_000.0).round() as u64).collect();
    SweepGrid::new(systems.to_vec(), points)
        .run_auto(|system, &bps| deployment_spec(scale, system, bps as f64 / 10_000.0))
        .iter()
        .map(|c| to_point(c.point as f64 / 10_000.0, c.system, &c.record))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coverage_deploys_nothing_and_full_deploys_everything() {
        let scale = Scale { src_ases: 2, hosts_per_as: 2, sim_time: 5 * SEC, seed: 3 };
        let none = run_deployment_cell(&scale, DefenseKind::NetFence, 0.0);
        assert_eq!(none.deployed_ases, 0);
        let full = run_deployment_cell(&scale, DefenseKind::NetFence, 1.0);
        assert_eq!(full.deployed_ases, full.total_ases);
        assert!(full.total_ases >= 4, "2 source ASes + transit + victim + colluder");
    }

    #[test]
    fn partial_coverage_reports_partial_extent() {
        let scale = Scale { src_ases: 4, hosts_per_as: 2, sim_time: 5 * SEC, seed: 3 };
        let half = run_deployment_cell(&scale, DefenseKind::NetFence, 0.5);
        // 2 of 4 source ASes plus all non-source ASes.
        assert_eq!(half.total_ases - half.deployed_ases, 2);
        assert!(half.deployed_ases < half.total_ases);
    }

    #[test]
    fn tiny_nonzero_coverage_still_deploys_the_infrastructure() {
        // 0.1 of 4 source ASes rounds to zero adopters, but destination and
        // transit ASes deploy whenever coverage is nonzero.
        let scale = Scale { src_ases: 4, hosts_per_as: 2, sim_time: 5 * SEC, seed: 3 };
        let p = run_deployment_cell(&scale, DefenseKind::NetFence, 0.1);
        assert_eq!(p.total_ases - p.deployed_ases, 4, "all 4 source ASes stay legacy");
        assert_eq!(p.deployed_ases, 2, "the transit and victim ASes deploy");
    }
}
