//! Turns a [`ScenarioSpec`] into a simulation and a [`Record`].
//!
//! The [`Runner`] is the single place where networks are built, defenses
//! deployed and flows spawned. It builds each network **exactly once** and
//! moves it into the simulator (the pre-refactor harnesses rebuilt every
//! dumbbell a second time just to keep the role metadata around), deploys
//! the defense factory per the spec's [`DeploymentSpec`] (resolving
//! coverage against the scenario's *source* ASes — destination and transit
//! ASes deploy whenever coverage is nonzero), tags every flow with its
//! role, runs the simulation, and collects the uniform [`Record`] including
//! the deployment's typed [`DefenseReport`].

use netfence_sim::prelude::*;

use crate::record::{LinkStats, Record, Role, RoleSeries};
use crate::spec::{AttackTarget, DefenseContext, ScenarioSpec, SuppressionGroup, TopologySpec};
use crate::topo::{build_dumbbell, build_parking_lot, Dumbbell, ParkingLot};

/// Executes one [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct Runner {
    spec: ScenarioSpec,
}

/// One role group about to be spawned: `(group name, role, members)` where
/// each member is a `(source, destination)` pair.
struct PlannedGroup {
    name: String,
    role: Role,
    members: Vec<(HostAddr, HostAddr)>,
}

impl Runner {
    /// A runner for `spec`.
    pub fn new(spec: ScenarioSpec) -> Self {
        Runner { spec }
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Build the network (once), instantiate the defense, spawn all role
    /// flows, run the simulation and collect the [`Record`].
    pub fn run(&self) -> Record {
        match self.spec.topology {
            TopologySpec::Dumbbell => self.run_dumbbell(),
            TopologySpec::ParkingLot { l1_bps, l2_bps } => self.run_parking_lot(l1_bps, l2_bps),
        }
    }

    fn run_dumbbell(&self) -> Record {
        let spec = &self.spec;
        let bottleneck_bps = spec.resolved_bottleneck_bps();
        let colluder_ases = match spec.attack_target {
            AttackTarget::Victim => 0,
            AttackTarget::Colluders { ases } => ases.max(1),
        };
        let Dumbbell { net, bottleneck, users, attackers, victim, colluders, .. } =
            build_dumbbell(&spec.scale, spec.legit_per_as, bottleneck_bps, colluder_ases);

        let ctx = DefenseContext {
            groups: vec![SuppressionGroup { victim, users: &users, attackers: &attackers }],
            bottleneck_bps,
            attack_on_victim: spec.attack_target == AttackTarget::Victim,
        };
        let factory = spec.defense.build(&ctx);
        let sources: Vec<HostAddr> = users.iter().chain(&attackers).copied().collect();
        let deployment = deploy_for_sources(&*factory, &net, &spec.defense.deployment, &sources);

        let planned = vec![
            PlannedGroup {
                name: "users".into(),
                role: Role::User,
                members: users.iter().map(|&u| (u, victim)).collect(),
            },
            PlannedGroup {
                name: "attackers".into(),
                role: Role::Attacker,
                members: attackers
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| match spec.attack_target {
                        AttackTarget::Victim => (a, victim),
                        AttackTarget::Colluders { .. } => (a, colluders[i % colluders.len()]),
                    })
                    .collect(),
            },
        ];

        let links = vec![("bottleneck".to_string(), bottleneck, bottleneck_bps)];
        let senders = spec.scale.senders();
        let fair_share = bottleneck_bps as f64 / senders as f64;
        self.simulate(net, deployment, planned, links, senders, fair_share)
    }

    fn run_parking_lot(&self, l1_bps: u64, l2_bps: u64) -> Record {
        let spec = &self.spec;
        let per_group = spec.scale.hosts_per_as.max(4);
        let legit = spec.legit_per_as.min(per_group);
        let ParkingLot { net, l1, l2, groups, .. } =
            build_parking_lot(per_group, legit, l1_bps, l2_bps);

        let bottleneck_bps = l1_bps.min(l2_bps);
        let ctx = DefenseContext {
            groups: groups
                .iter()
                .map(|g| SuppressionGroup {
                    victim: g.victim,
                    users: &g.users,
                    attackers: &g.attackers,
                })
                .collect(),
            bottleneck_bps,
            attack_on_victim: spec.attack_target == AttackTarget::Victim,
        };
        let factory = spec.defense.build(&ctx);
        let sources: Vec<HostAddr> =
            groups.iter().flat_map(|g| g.users.iter().chain(&g.attackers).copied()).collect();
        let deployment = deploy_for_sources(&*factory, &net, &spec.defense.deployment, &sources);

        let mut planned = Vec::new();
        for g in &groups {
            planned.push(PlannedGroup {
                name: format!("{}-users", g.label),
                role: Role::User,
                members: g.users.iter().map(|&u| (u, g.victim)).collect(),
            });
            let attacker_dst = match spec.attack_target {
                AttackTarget::Victim => g.victim,
                AttackTarget::Colluders { .. } => g.colluder,
            };
            planned.push(PlannedGroup {
                name: format!("{}-attackers", g.label),
                role: Role::Attacker,
                members: g.attackers.iter().map(|&a| (a, attacker_dst)).collect(),
            });
        }

        let links = vec![("L1".to_string(), l1, l1_bps), ("L2".to_string(), l2, l2_bps)];
        // Groups A+C cross L1, groups A+B cross L2: 2·per_group senders
        // compete for the tighter link.
        let fair_share = bottleneck_bps as f64 / (2 * per_group) as f64;
        // The parking lot simulates three groups of per_group senders; the
        // dumbbell's src_ases × hosts_per_as does not apply here.
        self.simulate(net, deployment, planned, links, 3 * per_group, fair_share)
    }

    /// Shared tail: spawn the planned role flows, run, collect.
    fn simulate(
        &self,
        net: Network,
        deployment: Deployment,
        planned: Vec<PlannedGroup>,
        links: Vec<(String, LinkAddr, u64)>,
        senders: usize,
        fair_share_bps: f64,
    ) -> Record {
        let spec = &self.spec;
        let mut sim = Simulator::new(
            net,
            deployment,
            SimConfig {
                end_time: spec.scale.sim_time,
                seed: spec.scale.seed,
                ..Default::default()
            },
        );

        let mut flow_ids: Vec<Vec<FlowId>> = Vec::with_capacity(planned.len());
        for (g, group) in planned.iter().enumerate() {
            let role_spec = match group.role {
                Role::User => &spec.users,
                Role::Attacker => &spec.attackers,
            };
            let mut ids = Vec::with_capacity(group.members.len());
            for (i, &(src, dst)) in group.members.iter().enumerate() {
                let start = role_spec.start.start_of(i);
                let seed = flow_seed(spec.scale.seed, g, i);
                let traffic = role_spec.traffic;
                ids.push(sim.add_flow(start, |id| traffic.make_flow(id, src, dst, seed)));
            }
            flow_ids.push(ids);
        }

        sim.run();

        let roles = planned
            .into_iter()
            .zip(flow_ids)
            .map(|(group, ids)| RoleSeries {
                group: group.name,
                role: group.role,
                flows: ids.iter().map(|&f| sim.progress(f)).collect(),
            })
            .collect();
        let links = links
            .into_iter()
            .map(|(label, addr, capacity_bps)| LinkStats {
                label,
                capacity_bps,
                utilization: sim.metrics.utilization(addr, capacity_bps),
                loss: sim.metrics.loss_rate(addr),
            })
            .collect();

        Record {
            name: spec.name.clone(),
            defense: spec.defense.kind,
            sim_time: spec.scale.sim_time,
            seed: spec.scale.seed,
            senders,
            fair_share_bps,
            roles,
            links,
            report: sim.report(),
        }
    }
}

/// Deploy `factory` onto `net`, interpreting fractional coverage against
/// the scenario's *source* ASes: the first (or seeded) `coverage` fraction
/// of the ASes hosting senders deploy, and every other AS (destination
/// side, transit core) deploys whenever coverage is nonzero — the paper's
/// adoption story, where the infrastructure deploys first and source
/// networks adopt incrementally for better service (§5.3). Explicit
/// placements pass through untouched.
fn deploy_for_sources(
    factory: &dyn DefenseFactory,
    net: &Network,
    dspec: &DeploymentSpec,
    sources: &[HostAddr],
) -> Deployment {
    let resolved = match &dspec.placement {
        Placement::Explicit(_) => dspec.clone(),
        Placement::FirstEdgeAses | Placement::Seeded(_) => {
            if dspec.coverage <= 0.0 {
                DeploymentSpec::explicit(Vec::new())
            } else {
                let mut src_ases: Vec<AsNum> = sources.iter().map(|&h| net.as_of_host(h)).collect();
                src_ases.sort_unstable();
                src_ases.dedup();
                let seed = match dspec.placement {
                    Placement::Seeded(seed) => Some(seed),
                    _ => None,
                };
                let mut chosen =
                    netfence_sim::deploy::pick_fraction(&src_ases, dspec.coverage, seed);
                // Every non-source AS (victims, colluders, transit core)
                // deploys alongside — even when the coverage fraction
                // rounds to zero adopting source ASes.
                let mut all: Vec<AsNum> = net.nodes.iter().map(|n| n.as_num()).collect();
                all.sort_unstable();
                all.dedup();
                chosen.extend(all.into_iter().filter(|a| src_ases.binary_search(a).is_err()));
                chosen.sort_unstable();
                chosen.dedup();
                DeploymentSpec::explicit(chosen)
            }
        }
    };
    factory.deploy(net, &resolved)
}

/// A per-flow seed derived from the scenario seed, stable across runs and
/// distinct across `(group, member)` so adding a flow never perturbs the
/// random stream of another.
fn flow_seed(base: u64, group: usize, member: usize) -> u64 {
    let mut x = base ^ ((group as u64 + 1) << 32) ^ (member as u64).wrapping_add(1);
    netfence_sim::rng::splitmix64(&mut x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DefenseKind, Scale, TrafficSpec};

    #[test]
    fn dumbbell_record_has_expected_shape() {
        let spec = ScenarioSpec::dumbbell(Scale {
            src_ases: 2,
            hosts_per_as: 2,
            sim_time: 5 * SEC,
            seed: 3,
        })
        .defense(DefenseKind::None);
        let r = Runner::new(spec).run();
        assert_eq!(r.roles.len(), 2);
        assert_eq!(r.group("users").unwrap().flows.len(), 2);
        assert_eq!(r.group("attackers").unwrap().flows.len(), 2);
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.senders, 4);
        assert!(r.fair_share_bps > 0.0);
    }

    #[test]
    fn parking_lot_record_has_six_groups_and_two_links() {
        let scale = Scale { src_ases: 1, hosts_per_as: 4, sim_time: 5 * SEC, seed: 3 };
        let spec = ScenarioSpec::parking_lot(scale, 1_000_000, 1_000_000)
            .defense(DefenseKind::None)
            .users(TrafficSpec::LongRunningTcp);
        let r = Runner::new(spec).run();
        // 3 groups × 4 senders actually simulated (src_ases is a dumbbell
        // knob and does not apply here).
        assert_eq!(r.senders, 12);
        assert_eq!(r.roles.len(), 6);
        for label in ["A-users", "A-attackers", "B-users", "B-attackers", "C-users", "C-attackers"]
        {
            assert!(r.group(label).is_some(), "missing group {label}");
        }
        assert_eq!(r.links.len(), 2);
        assert_eq!(r.links[0].label, "L1");
    }

    #[test]
    fn flow_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for g in 0..4 {
            for i in 0..50 {
                assert!(seen.insert(flow_seed(7, g, i)));
            }
        }
    }
}
