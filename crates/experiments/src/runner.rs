//! Turns a [`ScenarioSpec`] into a simulation and a [`Record`].
//!
//! The [`Runner`] is the single place where networks are built, defenses
//! deployed and flows spawned. Every topology — classic or generated —
//! comes back from `netfence-topo` as one uniform [`BuiltTopo`] — the
//! network (built **exactly once** and moved into the simulator) plus
//! role metadata (groups of
//! users/attackers with their victims and colluders, designated
//! bottlenecks, source ASes). The runner deploys the defense factory per
//! the spec's [`DeploymentSpec`] — fractional coverage is resolved against
//! the topology's *source* ASes by
//! [`DeploymentSpec::resolve_for_source_ases`], so destination and transit
//! ASes deploy whenever coverage is nonzero — tags every flow with its
//! role, runs the simulation, and collects the uniform [`Record`]
//! including the deployment's typed [`DefenseReport`].
//!
//! [`DefenseReport`]: netfence_sim::deploy::DefenseReport

use netfence_ctrl::service::CtrlService;
use netfence_sim::prelude::*;
use netfence_topo::{MultiBottleneckSpec, TransitStubSpec};

use crate::record::{FaultWindowRecord, GoodputSample, LinkStats, Record, Role, RoleSeries};
use crate::spec::{AttackTarget, DefenseContext, ScenarioSpec, SuppressionGroup, TopologySpec};
use crate::topo::{BuiltTopo, TopoSpec};

/// Executes one [`ScenarioSpec`].
#[derive(Debug, Clone)]
pub struct Runner {
    spec: ScenarioSpec,
}

/// The observer telemetry captured by one run (empty when the spec's
/// [`TelemetryConfig`] leaves the observers disabled). Pure output: the
/// [`Record`] of the same run is byte-identical whether or not this was
/// collected.
#[derive(Debug, Clone, Default)]
pub struct TelemetryDump {
    /// Timeline probe rows as JSONL (one object per sampled point).
    pub timeline_jsonl: String,
    /// Buffered timeline row count.
    pub timeline_rows: usize,
    /// Timeline rows evicted by the ring buffer.
    pub timeline_evicted: u64,
    /// Flight-recorder hop events as JSONL (one object per hop).
    pub trace_jsonl: String,
    /// Buffered hop event count.
    pub trace_events: usize,
    /// Hop events evicted by the ring buffer.
    pub trace_evicted: u64,
}

/// One role group about to be spawned: `(group name, role, members)` where
/// each member is a `(source, destination)` pair, plus the group's victim
/// and colluders (the context adaptive attacker agents are built with).
struct PlannedGroup {
    name: String,
    role: Role,
    members: Vec<(HostAddr, HostAddr)>,
    victim: HostAddr,
    colluders: Vec<HostAddr>,
}

impl Runner {
    /// A runner for `spec`.
    pub fn new(spec: ScenarioSpec) -> Self {
        Runner { spec }
    }

    /// The spec this runner executes.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// Build the network (once), instantiate the defense, spawn all role
    /// flows, run the simulation and collect the [`Record`].
    pub fn run(&self) -> Record {
        let built = self.build_topo();
        self.run_built(built).0
    }

    /// Like [`Runner::run`] but also returns the run's [`TelemetryDump`]
    /// (timeline probes + packet flight recorder). The dump is empty
    /// unless the spec enabled telemetry via
    /// [`ScenarioSpec::traced`](crate::spec::ScenarioSpec::traced).
    pub fn run_with_telemetry(&self) -> (Record, TelemetryDump) {
        let built = self.build_topo();
        self.run_built(built)
    }

    /// Run the scenario on an externally built topology instead of the
    /// spec's own [`TopologySpec`] — the escape hatch for custom
    /// [`BuiltTopo`]s (hand-wired meshes, third-party generators). The
    /// spec's defense, traffic, schedules and attack target apply
    /// unchanged; its topology field is ignored.
    pub fn run_on(&self, built: BuiltTopo) -> Record {
        self.run_built(built).0
    }

    /// Map the scenario onto a `netfence-topo` [`TopoSpec`] and build it.
    fn build_topo(&self) -> BuiltTopo {
        let spec = &self.spec;
        let colluder_ases = match spec.attack_target {
            AttackTarget::Victim => 0,
            AttackTarget::Colluders { ases } => ases.max(1),
        };
        match spec.topology {
            TopologySpec::Dumbbell => TopoSpec::Dumbbell {
                src_ases: spec.scale.src_ases,
                hosts_per_as: spec.scale.hosts_per_as,
                legit_per_as: spec.legit_per_as,
                bottleneck_bps: spec.resolved_bottleneck_bps(),
                colluder_ases,
            }
            .build(),
            TopologySpec::ParkingLot { l1_bps, l2_bps } => {
                let per_group = spec.scale.hosts_per_as.max(4);
                TopoSpec::ParkingLot {
                    per_group,
                    legit_per_group: spec.legit_per_as.min(per_group),
                    l1_bps,
                    l2_bps,
                }
                .build()
            }
            TopologySpec::Internet(shape) => TopoSpec::TransitStub(TransitStubSpec {
                transit_ases: shape.transit_ases,
                routers_per_transit: shape.routers_per_transit,
                stub_ases: spec.scale.src_ases,
                hosts: spec.scale.senders(),
                legit_per_stub: spec.legit_per_as,
                zipf_milli_alpha: shape.zipf_milli_alpha,
                multihoming: shape.multihoming,
                bottleneck_bps: spec.resolved_bottleneck_bps(),
                stub_bps: 0,
                core_bps: 0,
                colluder_ases,
                seed: spec.scale.seed,
            })
            .build(),
            TopologySpec::MultiBottleneck { bottlenecks, branches, bps } => {
                let per_group = spec.scale.hosts_per_as.max(4);
                TopoSpec::MultiBottleneck(MultiBottleneckSpec {
                    bottlenecks,
                    branches,
                    hosts_per_group: per_group,
                    legit_per_group: spec.legit_per_as.min(per_group),
                    bottleneck_bps: bps,
                })
                .build()
            }
        }
    }

    /// Deploy, spawn and simulate one built topology.
    fn run_built(&self, built: BuiltTopo) -> (Record, TelemetryDump) {
        let spec = &self.spec;
        let BuiltTopo { net, groups, bottlenecks, source_ases, competing_senders } = built;
        let bottleneck_bps = bottlenecks.iter().map(|b| b.bps).min().unwrap_or(0);

        let ctx = DefenseContext {
            groups: groups
                .iter()
                .map(|g| SuppressionGroup {
                    victim: g.victim,
                    users: &g.users,
                    attackers: &g.attackers,
                })
                .collect(),
            bottleneck_bps,
            attack_on_victim: spec.attack_target == AttackTarget::Victim,
        };
        let factory = spec.defense.build(&ctx);
        let resolved = spec.defense.deployment.resolve_for_source_ases(&net, &source_ases);
        let mut deployment = factory.deploy(&net, &resolved);
        // Route control messages through the asynchronous transport before
        // the simulator drains the deploy-time traffic, so even the initial
        // key announcements and filter requests see latency/loss/outages.
        if let Some(ctrl_cfg) = &spec.control {
            deployment
                .bus
                .install_channel(Box::new(CtrlService::for_network(&net, ctrl_cfg.clone())));
        }

        let mut planned = Vec::with_capacity(2 * groups.len());
        for g in &groups {
            assert!(
                spec.attack_target == AttackTarget::Victim || !g.colluders.is_empty(),
                "AttackTarget::Colluders needs a colluder destination in every group, but group \
                 {:?} has none — build the topology with colluders or target the victim",
                g.label
            );
            let (users_name, attackers_name) = if g.label.is_empty() {
                ("users".to_string(), "attackers".to_string())
            } else {
                (format!("{}-users", g.label), format!("{}-attackers", g.label))
            };
            planned.push(PlannedGroup {
                name: users_name,
                role: Role::User,
                members: g.users.iter().map(|&u| (u, g.victim)).collect(),
                victim: g.victim,
                colluders: g.colluders.clone(),
            });
            planned.push(PlannedGroup {
                name: attackers_name,
                role: Role::Attacker,
                members: g
                    .attackers
                    .iter()
                    .enumerate()
                    .map(|(i, &a)| match spec.attack_target {
                        AttackTarget::Victim => (a, g.victim),
                        AttackTarget::Colluders { .. } => (a, g.colluders[i % g.colluders.len()]),
                    })
                    .collect(),
                victim: g.victim,
                colluders: g.colluders.clone(),
            });
        }

        // The ring of per-group primary attack destinations, in group
        // order: the targets a Rolling adversary walks to shift its flood
        // across the topology's bottlenecks.
        let mut ring: Vec<HostAddr> = Vec::with_capacity(groups.len());
        for g in &groups {
            let primary = match spec.attack_target {
                AttackTarget::Victim => g.victim,
                AttackTarget::Colluders { .. } => g.colluders[0],
            };
            if !ring.contains(&primary) {
                ring.push(primary);
            }
        }

        let senders: usize = groups.iter().map(|g| g.users.len() + g.attackers.len()).sum();
        let links: Vec<(String, LinkAddr, u64)> =
            bottlenecks.into_iter().map(|b| (b.label, b.addr, b.bps)).collect();
        let fair_share = bottleneck_bps as f64 / competing_senders.max(1) as f64;
        self.simulate(net, deployment, planned, ring, links, senders, fair_share)
    }

    /// Shared tail: spawn the planned role flows, run, collect.
    #[allow(clippy::too_many_arguments)]
    fn simulate(
        &self,
        net: Network,
        deployment: Deployment,
        planned: Vec<PlannedGroup>,
        ring: Vec<HostAddr>,
        links: Vec<(String, LinkAddr, u64)>,
        senders: usize,
        fair_share_bps: f64,
    ) -> (Record, TelemetryDump) {
        let spec = &self.spec;
        // Resolve the fault plan against the network before it moves into
        // the simulator. Compilation draws from its own RNG substream and
        // the empty plan compiles to zero events, so fault-free runs stay
        // byte-identical to pre-fault-engine ones (pinned by
        // `tests/faults.rs`).
        let compiled = match spec.faults.compile(&net, spec.scale.seed) {
            Ok(c) => c,
            Err(e) => panic!("fault plan does not fit scenario '{}': {e}", spec.name),
        };
        let mut sim = Simulator::new(
            net,
            deployment,
            SimConfig {
                end_time: spec.scale.sim_time,
                seed: spec.scale.seed,
                sample_interval: spec.sample_interval,
                telemetry: spec.telemetry,
                ..Default::default()
            },
        );
        compiled.schedule(&mut sim);

        let mut flow_ids: Vec<Vec<FlowId>> = Vec::with_capacity(planned.len());
        let mut attack_start: Option<Nanos> = None;
        for (g, group) in planned.iter().enumerate() {
            let role_spec = match group.role {
                Role::User => &spec.users,
                Role::Attacker => &spec.attackers,
            };
            let mut ids = Vec::with_capacity(group.members.len());
            for (i, &(src, dst)) in group.members.iter().enumerate() {
                let start = role_spec.start.start_of(i);
                if group.role == Role::Attacker {
                    attack_start = Some(attack_start.map_or(start, |a: Nanos| a.min(start)));
                    if let Some(strategy) = spec.adversary {
                        // Adaptive agents draw from a dedicated attacker
                        // substream — never from the per-role `flow_seed`
                        // space legitimate flows use — so attacker count
                        // and strategy choice cannot perturb user traffic.
                        let ctx = netfence_adversary::StrategyCtx {
                            seed: adversary_seed(spec.scale.seed, g, i),
                            member: i,
                            victim: group.victim,
                            colluder: (!group.colluders.is_empty())
                                .then(|| group.colluders[i % group.colluders.len()]),
                            ring: ring.clone(),
                            aimd_interval: spec.defense.netfence.ilim,
                        };
                        ids.push(sim.add_flow(start, |id| strategy.build_flow(id, src, dst, ctx)));
                        continue;
                    }
                }
                let seed = flow_seed(spec.scale.seed, g, i);
                let traffic = role_spec.traffic;
                ids.push(sim.add_flow(start, |id| traffic.make_flow(id, src, dst, seed)));
            }
            flow_ids.push(ids);
        }

        sim.run();

        // Fold the engine's per-flow samples into per-role cumulative
        // series, using the planned groups' flow ids as the role map.
        let user_flows: Vec<FlowId> = planned
            .iter()
            .zip(&flow_ids)
            .filter(|(g, _)| g.role == Role::User)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        let attacker_flows: Vec<FlowId> = planned
            .iter()
            .zip(&flow_ids)
            .filter(|(g, _)| g.role == Role::Attacker)
            .flat_map(|(_, ids)| ids.iter().copied())
            .collect();
        let samples = sim
            .samples()
            .iter()
            .map(|(at, per_flow)| GoodputSample {
                at: *at,
                user_bytes: user_flows.iter().map(|&f| per_flow[f]).sum(),
                attacker_bytes: attacker_flows.iter().map(|&f| per_flow[f]).sum(),
            })
            .collect();

        let roles = planned
            .into_iter()
            .zip(flow_ids)
            .map(|(group, ids)| RoleSeries {
                group: group.name,
                role: group.role,
                flows: ids.iter().map(|&f| sim.progress(f)).collect(),
                drops: {
                    // Keyed lookups only — the ledger's per-flow map is a
                    // HashMap, but summing over the group's own flow-id
                    // list never observes iteration order.
                    let mut budget = DropBudget::default();
                    for &f in &ids {
                        budget.merge(&sim.metrics.drops.flow(f as u64));
                    }
                    budget
                },
            })
            .collect();
        let links = links
            .into_iter()
            .map(|(label, addr, capacity_bps)| LinkStats {
                label,
                capacity_bps,
                utilization: sim.metrics.utilization(addr, capacity_bps),
                loss: sim.metrics.loss_rate(addr),
            })
            .collect();

        let dump = TelemetryDump {
            timeline_jsonl: sim.timeline.to_jsonl(),
            timeline_rows: sim.timeline.len(),
            timeline_evicted: sim.timeline.evicted(),
            trace_jsonl: sim.flight.to_jsonl(),
            trace_events: sim.flight.len(),
            trace_evicted: sim.flight.evicted(),
        };
        let record = Record {
            name: spec.name.clone(),
            defense: spec.defense.kind,
            sim_time: spec.scale.sim_time,
            seed: spec.scale.seed,
            senders,
            fair_share_bps,
            roles,
            links,
            report: sim.report(),
            samples,
            attack_start,
            faults: compiled
                .windows
                .iter()
                .map(|w| FaultWindowRecord {
                    kind: w.kind.label().to_string(),
                    at: w.start,
                    clear_at: w.clear_at,
                })
                .collect(),
            engine: sim.metrics.profile,
        };
        (record, dump)
    }
}

/// A per-flow seed derived from the scenario seed, stable across runs and
/// distinct across `(group, member)` so adding a flow never perturbs the
/// random stream of another.
fn flow_seed(base: u64, group: usize, member: usize) -> u64 {
    let mut x = base ^ ((group as u64 + 1) << 32) ^ (member as u64).wrapping_add(1);
    netfence_sim::rng::splitmix64(&mut x)
}

/// Domain separator of the attacker-agent seed substream.
const ADVERSARY_STREAM: u64 = 0xADF0_5EED_0000_0001;

/// The seed of one adaptive attacker agent: a *dedicated* substream of the
/// scenario seed, domain-separated from [`flow_seed`] so that changing the
/// attacker count or strategy can never consume or shift the seeds
/// legitimate flows derive theirs from — legitimate arrivals stay
/// byte-identical across attacker configurations (pinned by regression
/// test).
fn adversary_seed(base: u64, group: usize, member: usize) -> u64 {
    let mut x =
        base ^ ADVERSARY_STREAM ^ ((group as u64 + 1) << 32) ^ (member as u64).wrapping_add(1);
    netfence_sim::rng::splitmix64(&mut x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{DefenseKind, InternetShape, Scale, StartSchedule, TrafficSpec};

    #[test]
    fn dumbbell_record_has_expected_shape() {
        let spec = ScenarioSpec::dumbbell(Scale {
            src_ases: 2,
            hosts_per_as: 2,
            sim_time: 5 * SEC,
            seed: 3,
        })
        .defense(DefenseKind::None);
        let r = Runner::new(spec).run();
        assert_eq!(r.roles.len(), 2);
        assert_eq!(r.group("users").unwrap().flows.len(), 2);
        assert_eq!(r.group("attackers").unwrap().flows.len(), 2);
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.senders, 4);
        assert!(r.fair_share_bps > 0.0);
    }

    #[test]
    fn parking_lot_record_has_six_groups_and_two_links() {
        let scale = Scale { src_ases: 1, hosts_per_as: 4, sim_time: 5 * SEC, seed: 3 };
        let spec = ScenarioSpec::parking_lot(scale, 1_000_000, 1_000_000)
            .defense(DefenseKind::None)
            .users(TrafficSpec::LongRunningTcp);
        let r = Runner::new(spec).run();
        // 3 groups × 4 senders actually simulated (src_ases is a dumbbell
        // knob and does not apply here).
        assert_eq!(r.senders, 12);
        assert_eq!(r.roles.len(), 6);
        for label in ["A-users", "A-attackers", "B-users", "B-attackers", "C-users", "C-attackers"]
        {
            assert!(r.group(label).is_some(), "missing group {label}");
        }
        assert_eq!(r.links.len(), 2);
        assert_eq!(r.links[0].label, "L1");
    }

    #[test]
    fn internet_record_has_one_group_per_victim_and_zipf_senders() {
        let scale = Scale { src_ases: 4, hosts_per_as: 5, sim_time: 5 * SEC, seed: 3 };
        let spec = ScenarioSpec::internet(scale, InternetShape::default())
            .defense(DefenseKind::None)
            .bottleneck_bps(2_000_000);
        let r = Runner::new(spec).run();
        // 4 stubs × 5 hosts-per-AS on average = 20 senders, one user per
        // stub (the dumbbell default carried over).
        assert_eq!(r.senders, 20);
        assert_eq!(r.group("users").unwrap().flows.len(), 4);
        assert_eq!(r.group("attackers").unwrap().flows.len(), 16);
        assert_eq!(r.links.len(), 1);
        assert_eq!(r.links[0].label, "bottleneck");
        assert_eq!(r.links[0].capacity_bps, 2_000_000);
    }

    #[test]
    fn multi_bottleneck_record_generalizes_the_parking_lot() {
        let scale = Scale { src_ases: 1, hosts_per_as: 4, sim_time: 5 * SEC, seed: 3 };
        let spec =
            ScenarioSpec::multi_bottleneck(scale, 3, 1, 1_000_000).defense(DefenseKind::None);
        let r = Runner::new(spec).run();
        // Groups: A + C1..C3 + B1, two role series each.
        assert_eq!(r.roles.len(), 10);
        assert!(r.group("A-users").is_some());
        assert!(r.group("C3-attackers").is_some());
        assert!(r.group("B1-users").is_some());
        // Links: L1..L3 + B1.
        assert_eq!(r.links.len(), 4);
        assert_eq!(r.links[3].label, "B1");
        assert_eq!(r.senders, 5 * 4);
    }

    #[test]
    fn flow_seeds_are_distinct() {
        let mut seen = std::collections::HashSet::new();
        for g in 0..4 {
            for i in 0..50 {
                assert!(seen.insert(flow_seed(7, g, i)));
            }
        }
    }

    #[test]
    fn adversary_seeds_live_in_their_own_substream() {
        // The attacker substream never collides with the per-role flow
        // seeds: a user flow's RNG stream is the same no matter how many
        // adversary agents exist or what they are seeded with.
        let mut seen = std::collections::HashSet::new();
        for g in 0..4 {
            for i in 0..50 {
                assert!(seen.insert(flow_seed(7, g, i)));
                assert!(seen.insert(adversary_seed(7, g, i)), "substream collision at ({g},{i})");
            }
        }
    }

    #[test]
    fn attacker_strategy_never_perturbs_legitimate_arrivals() {
        // Regression for the RNG-stream coupling fix: with the attackers
        // held silent (start beyond the end of the run), every strategy —
        // including the RNG-consuming FlashMimic and the legacy fixed-rate
        // path — must produce byte-identical Records. Any strategy leaking
        // into the users' seeds or arrival schedule would show up here.
        use netfence_adversary::AttackStrategy;
        let spec = ScenarioSpec::dumbbell(Scale {
            src_ases: 2,
            hosts_per_as: 3,
            sim_time: 4 * SEC,
            seed: 11,
        })
        .defense(DefenseKind::NetFence)
        .users(TrafficSpec::WebLike)
        .attacker_start(StartSchedule::delayed(5 * SEC));
        let legacy = Runner::new(spec.clone()).run();
        for strategy in AttackStrategy::lineup(1_000_000) {
            let adaptive = Runner::new(spec.clone().adversary(strategy)).run();
            assert_eq!(
                legacy,
                adaptive,
                "silent {} attackers changed the record",
                strategy.label()
            );
        }
    }

    #[test]
    fn static_strategy_reproduces_the_legacy_attacker_record() {
        // Active attackers: the Static strategy is pure delegation to the
        // same UdpFlow the legacy path spawns, so the whole Record matches
        // byte-for-byte (property-tested across defenses in
        // tests/adversary.rs).
        let spec = ScenarioSpec::dumbbell(Scale {
            src_ases: 2,
            hosts_per_as: 3,
            sim_time: 4 * SEC,
            seed: 11,
        })
        .defense(DefenseKind::NetFence)
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim);
        let legacy = Runner::new(spec.clone()).run();
        let adaptive =
            Runner::new(spec.adversary(netfence_adversary::AttackStrategy::static_cbr(1_000_000)))
                .run();
        assert_eq!(legacy, adaptive);
    }
}
