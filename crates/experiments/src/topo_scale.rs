//! The topology-scaling sweep: host count vs network-build time, routing
//! memory and simulated packet throughput.
//!
//! The paper's scalability argument (§5.1, §6.3) is that NetFence keeps
//! per-sender state only at access routers, so the defense's cost grows
//! with a network's *edge*, not its *core*. This sweep probes the
//! reproduction's side of that claim on generated transit-stub internets
//! (`netfence-topo`): for a growing host count it records
//!
//! * how long [`TopoSpec::build`] takes — dominated by the AS-aggregated
//!   routing construction (one BFS per host-bearing router over the
//!   router-only reverse adjacency, dense `Vec` next-hop tables);
//! * how much memory the routing tables hold
//!   ([`Network::route_stats`](netfence_sim::topology::Network::route_stats));
//! * the simulated packets per wall-clock second of a NetFence deployment
//!   vs the undefended baseline under an unwanted-traffic flood —
//!   suppression is forced off so the comparison isolates the data-plane
//!   cost of the deployed shims, agents and three-channel queues.
//!
//! Library entry points are consumed by the `topo_scale` binary, the
//! Criterion bench of the same name and the integration tests.

use std::time::Instant;

use netfence_sim::prelude::*;
use netfence_topo::{TopoSpec, TransitStubSpec};

use crate::prelude::*;

/// One simulated system at one scale point.
#[derive(Debug, Clone)]
pub struct ScaleRun {
    /// The defense system.
    pub system: DefenseKind,
    /// Wall-clock seconds for the whole run (build + deploy + simulate).
    pub wall_secs: f64,
    /// Packets injected by all flows over the simulated window.
    pub packets: u64,
    /// Simulated packets per wall-clock second.
    pub pkts_per_sec: f64,
    /// Average legitimate-user goodput, bits per second.
    pub avg_user_bps: f64,
    /// Engine events processed by the run.
    pub engine_events: u64,
    /// Engine events per wall-clock second.
    pub events_per_sec: f64,
    /// Total typed drops across every cause in the run.
    pub drop_total: u64,
}

/// One point of the scaling sweep.
#[derive(Debug, Clone)]
pub struct ScalePoint {
    /// Sender hosts actually generated.
    pub hosts: usize,
    /// Stub ASes holding them.
    pub stubs: usize,
    /// Total nodes in the network.
    pub nodes: usize,
    /// Total unidirectional links.
    pub links: usize,
    /// Routers carrying a next-hop table.
    pub routers: usize,
    /// Routing destinations (host-bearing routers).
    pub destinations: usize,
    /// Bytes held by the dense next-hop tables.
    pub route_table_bytes: usize,
    /// Wall-clock seconds to build the network including all routes.
    pub build_secs: f64,
    /// Simulation runs at this point (empty for build-only sweeps).
    pub runs: Vec<ScaleRun>,
}

/// Stub-AS count for a host count: ~100 hosts per stub on average, at
/// least 4 stubs, at most 512.
pub fn stub_count(hosts: usize) -> usize {
    (hosts / 100).clamp(4, 512)
}

/// The generated transit-stub family the sweep walks: 3 transit ASes × 2
/// routers, doubly-homed Zipf(0.9) stubs, one victim region, and a
/// bottleneck provisioned at a 50 kbps per-sender fair share.
pub fn transit_stub_spec(hosts: usize, seed: u64) -> TransitStubSpec {
    let stub_ases = stub_count(hosts);
    TransitStubSpec {
        transit_ases: 3,
        routers_per_transit: 2,
        stub_ases,
        hosts: hosts.max(stub_ases),
        legit_per_stub: 1,
        zipf_milli_alpha: 900,
        multihoming: 2,
        bottleneck_bps: 50_000 * hosts as u64,
        stub_bps: 0,
        core_bps: 0,
        colluder_ases: 0,
        seed,
    }
}

/// The simulation scenario at one scale point: the Figure 8 unwanted-flood
/// setting on the generated internet (one user per stub fetching 20 KB
/// pages, the rest sending 100 kbps CBR at the victim), with suppression
/// forced off so NetFence-vs-None measures pure data-plane overhead.
pub fn scale_spec(hosts: usize, system: DefenseKind) -> ScenarioSpec {
    let stubs = stub_count(hosts);
    let scale =
        Scale { src_ases: stubs, hosts_per_as: (hosts / stubs).max(1), sim_time: 5 * SEC, seed: 7 };
    ScenarioSpec::internet(scale, InternetShape::default())
        .named("topo-scale")
        .defense_spec(DefenseSpec::new(system).with_suppression(Suppression::Off))
        .fair_share(50_000)
        .legit_per_as(1)
        .users(TrafficSpec::repeated_file(20_000, 2 * SEC))
        .user_start(StartSchedule::staggered(10, 100 * MILLI))
        .attackers(TrafficSpec::cbr(100_000), AttackTarget::Victim)
        .attacker_start(StartSchedule::staggered(100, MILLI))
}

/// Build (only) the transit-stub network for `hosts` senders, timing the
/// construction and sizing the routing state.
pub fn build_point(hosts: usize, seed: u64) -> ScalePoint {
    let spec = transit_stub_spec(hosts, seed);
    // lint:allow(wall-clock): deliberately times real construction cost for the scaling table; never enters a Record
    let start = Instant::now();
    let built = TopoSpec::TransitStub(spec).build();
    let build_secs = start.elapsed().as_secs_f64();
    let stats = built.net.route_stats();
    ScalePoint {
        hosts: built.senders(),
        stubs: spec.stub_ases,
        nodes: built.net.nodes.len(),
        links: built.net.links.len(),
        routers: stats.routers,
        destinations: stats.destinations,
        route_table_bytes: stats.table_bytes,
        build_secs,
        runs: Vec::new(),
    }
}

/// Build and simulate one scale point for each system in `systems`.
pub fn run_point(hosts: usize, seed: u64, systems: &[DefenseKind]) -> ScalePoint {
    let mut point = build_point(hosts, seed);
    for &system in systems {
        let spec = scale_spec(hosts, system);
        // lint:allow(wall-clock): measures simulator throughput (pkts per wall-second) for the scaling table; never enters a Record
        let start = Instant::now();
        let r = Runner::new(spec).run();
        let wall_secs = start.elapsed().as_secs_f64().max(1e-9);
        let packets: u64 = r.users().chain(r.attackers()).map(|p| p.packets_sent).sum();
        point.runs.push(ScaleRun {
            system,
            wall_secs,
            packets,
            pkts_per_sec: packets as f64 / wall_secs,
            avg_user_bps: r.avg_user_bps(),
            engine_events: r.engine.events,
            events_per_sec: r.engine.events_per_sec(wall_secs),
            drop_total: r.report.drop_budget.total(),
        });
    }
    point
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_point_reports_the_generated_shape() {
        let p = build_point(400, 7);
        assert_eq!(p.hosts, 400);
        assert_eq!(p.stubs, 4);
        assert!(p.nodes > 400, "nodes: {}", p.nodes);
        assert!(p.routers >= 4 + 6 + 2, "routers: {}", p.routers);
        assert!(p.destinations >= 5, "destinations: {}", p.destinations);
        assert_eq!(p.route_table_bytes, p.routers * p.destinations * 4);
        assert!(p.build_secs >= 0.0);
    }

    #[test]
    fn run_point_simulates_both_systems() {
        let p = run_point(200, 7, &[DefenseKind::NetFence, DefenseKind::None]);
        assert_eq!(p.runs.len(), 2);
        for run in &p.runs {
            assert!(run.packets > 0, "{:?} moved no packets", run.system);
            assert!(run.pkts_per_sec > 0.0);
            assert!(run.engine_events > 0, "{:?} processed no events", run.system);
            assert!(run.events_per_sec > 0.0);
        }
    }
}
