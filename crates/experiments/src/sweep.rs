//! The (defense system × sweep point) grid driver.
//!
//! Every comparison figure of the paper is a grid: each system from a list
//! runs the same scenario at each sweep point (sender count, capacity pair,
//! on-off period, …). [`SweepGrid`] owns that iteration — build it from the
//! systems and points, hand it a `spec` closure mapping one cell to a
//! [`ScenarioSpec`], and get back one [`Cell`] per combination, in
//! deterministic (point-major) order regardless of how many worker threads
//! execute the cells.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::record::Record;
use crate::runner::Runner;
use crate::spec::{DefenseKind, ScenarioSpec};

/// One executed cell of the grid.
#[derive(Debug, Clone)]
pub struct Cell<P> {
    /// The sweep point.
    pub point: P,
    /// The defense system that ran.
    pub system: DefenseKind,
    /// The run's outcome.
    pub record: Record,
}

/// A (system × point) sweep.
#[derive(Debug, Clone)]
pub struct SweepGrid<P> {
    systems: Vec<DefenseKind>,
    points: Vec<P>,
}

impl<P: Clone> SweepGrid<P> {
    /// A grid over `systems` × `points`.
    pub fn new(systems: impl Into<Vec<DefenseKind>>, points: impl Into<Vec<P>>) -> Self {
        SweepGrid { systems: systems.into(), points: points.into() }
    }

    /// Number of cells in the grid.
    pub fn len(&self) -> usize {
        self.systems.len() * self.points.len()
    }

    /// Whether the grid is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The cells in point-major order (all systems at point 0, then all
    /// systems at point 1, …) — the row order the paper's tables use.
    fn cells(&self) -> Vec<(P, DefenseKind)> {
        let mut v = Vec::with_capacity(self.len());
        for p in &self.points {
            for &s in &self.systems {
                v.push((p.clone(), s));
            }
        }
        v
    }

    /// Run every cell sequentially.
    pub fn run(&self, spec: impl Fn(DefenseKind, &P) -> ScenarioSpec) -> Vec<Cell<P>> {
        self.cells()
            .into_iter()
            .map(|(point, system)| {
                let record = Runner::new(spec(system, &point)).run();
                Cell { point, system, record }
            })
            .collect()
    }

    /// Run the cells on `threads` worker threads (scoped `std::thread`; the
    /// workspace deliberately has no rayon dependency — see `DESIGN.md`).
    /// Results come back in the same deterministic order as [`run`]: each
    /// cell's simulation is fully independent and seeds come from its spec,
    /// so the schedule cannot leak into the records.
    ///
    /// [`run`]: SweepGrid::run
    pub fn run_parallel(
        &self,
        threads: usize,
        spec: impl Fn(DefenseKind, &P) -> ScenarioSpec + Sync,
    ) -> Vec<Cell<P>>
    where
        P: Send + Sync,
    {
        let cells = self.cells();
        let threads = threads.max(1).min(cells.len().max(1));
        if threads <= 1 {
            return self.run(spec);
        }
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<Option<Cell<P>>>> =
            Mutex::new((0..cells.len()).map(|_| None).collect());
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some((point, system)) = cells.get(i) else { break };
                    let record = Runner::new(spec(*system, point)).run();
                    done.lock().unwrap()[i] =
                        Some(Cell { point: point.clone(), system: *system, record });
                });
            }
        });
        done.into_inner().unwrap().into_iter().map(|c| c.expect("cell executed")).collect()
    }

    /// Run with one worker per available CPU (capped by the cell count).
    pub fn run_auto(&self, spec: impl Fn(DefenseKind, &P) -> ScenarioSpec + Sync) -> Vec<Cell<P>>
    where
        P: Send + Sync,
    {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        self.run_parallel(threads, spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Scale, TrafficSpec};
    use netfence_sim::time::SEC;

    fn tiny_spec(system: DefenseKind, fair_share: &u64) -> ScenarioSpec {
        ScenarioSpec::dumbbell(Scale { src_ases: 2, hosts_per_as: 2, sim_time: 4 * SEC, seed: 9 })
            .defense(system)
            .fair_share(*fair_share)
            .users(TrafficSpec::LongRunningTcp)
    }

    #[test]
    fn grid_covers_every_cell_in_point_major_order() {
        let grid = SweepGrid::new([DefenseKind::None, DefenseKind::Fq], [50_000u64, 100_000]);
        assert_eq!(grid.len(), 4);
        let cells = grid.run(tiny_spec);
        let got: Vec<(u64, DefenseKind)> = cells.iter().map(|c| (c.point, c.system)).collect();
        assert_eq!(
            got,
            vec![
                (50_000, DefenseKind::None),
                (50_000, DefenseKind::Fq),
                (100_000, DefenseKind::None),
                (100_000, DefenseKind::Fq),
            ]
        );
    }

    #[test]
    fn parallel_run_matches_sequential_run() {
        let grid = SweepGrid::new([DefenseKind::None, DefenseKind::Fq], [50_000u64, 100_000]);
        let seq = grid.run(tiny_spec);
        let par = grid.run_parallel(4, tiny_spec);
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.point, p.point);
            assert_eq!(s.system, p.system);
            assert_eq!(s.record, p.record, "parallel execution changed a record");
        }
    }
}
