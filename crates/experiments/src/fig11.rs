//! Figure 11: microscopic on-off (shrew-style) attacks.
//!
//! Attackers synchronize bursts of `Ton` at 1 Mbps followed by `Toff` of
//! silence, trying to congest the bottleneck with bursts while keeping
//! their average rate low. The figure plots the average legitimate-user
//! (long-running TCP) throughput against `Toff` for `Ton` of 0.5 s and 4 s,
//! showing that the attack cannot push a user below its fair share and that
//! users reclaim the idle bandwidth as `Toff` grows.

use netfence_sim::prelude::*;

use crate::prelude::*;

/// One point of Figure 11.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// On-period length.
    pub ton: Nanos,
    /// Off-period length.
    pub toff: Nanos,
    /// Average legitimate-user throughput in bits per second.
    pub avg_user_bps: f64,
    /// The per-sender fair share if attackers were always on.
    pub fair_share_bps: u64,
}

/// The Figure 11 scenario: 25% long-running TCP users, synchronized on-off
/// UDP attackers flooding colluders. All attackers start at the same
/// instant so their bursts align — the worst case discussed in §5.2.1.
///
/// The pulse itself is [`AttackStrategy::Shrew`] with the figure's fixed
/// (`Ton`, `Toff`) timing; `shrew_reproduces_the_legacy_onoff_record`
/// pins that the strategy agent reproduces the old hard-coded
/// `TrafficSpec::on_off` attacker byte-for-byte.
pub fn fig11_spec(scale: &Scale, fair_share: u64, ton: Nanos, toff: Nanos) -> ScenarioSpec {
    let colluders = 3.min(scale.src_ases).max(1);
    ScenarioSpec::dumbbell(*scale)
        .named("fig11-onoff")
        .defense(DefenseKind::NetFence)
        .fair_share(fair_share)
        .legit_fraction(0.25)
        .users(TrafficSpec::LongRunningTcp)
        .user_start(StartSchedule::staggered(20, 50 * MILLI))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: colluders })
        .attacker_start(StartSchedule::Synchronized)
        .adversary(AttackStrategy::shrew_fixed(1_000_000, ton, toff))
}

/// Run one (Ton, Toff) cell with NetFence.
pub fn run_fig11_cell(scale: &Scale, fair_share: u64, ton: Nanos, toff: Nanos) -> Fig11Point {
    let r = Runner::new(fig11_spec(scale, fair_share, ton, toff)).run();
    Fig11Point { ton, toff, avg_user_bps: r.avg_user_bps(), fair_share_bps: fair_share }
}

/// Run the Figure 11 sweep in parallel: Ton ∈ {0.5 s, 4 s}, Toff from
/// `toffs_secs`.
pub fn run_fig11(scale: &Scale, fair_share: u64, toffs_secs: &[f64]) -> Vec<Fig11Point> {
    let mut points: Vec<(Nanos, Nanos)> = Vec::new();
    for &ton_s in &[0.5f64, 4.0] {
        for &toff_s in toffs_secs {
            points.push((secs(ton_s), secs(toff_s)));
        }
    }
    SweepGrid::new([DefenseKind::NetFence], points)
        .run_auto(|_, &(ton, toff)| fig11_spec(scale, fair_share, ton, toff))
        .iter()
        .map(|c| Fig11Point {
            ton: c.point.0,
            toff: c.point.1,
            avg_user_bps: c.record.avg_user_bps(),
            fair_share_bps: fair_share,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shrew_reproduces_the_legacy_onoff_record() {
        // The pre-migration Figure 11 attacker was a plain
        // `TrafficSpec::on_off` flow; the `Shrew` strategy with the same
        // fixed timing must yield the *identical* Record.
        let scale = Scale { src_ases: 2, hosts_per_as: 3, sim_time: 8 * SEC, seed: 11 };
        let (ton, toff) = (secs(0.5), secs(1.5));
        let legacy = {
            let mut spec = fig11_spec(&scale, 100_000, ton, toff);
            spec.adversary = None;
            spec.attackers.traffic = TrafficSpec::on_off(1_000_000, ton, toff);
            Runner::new(spec).run()
        };
        let shrew = Runner::new(fig11_spec(&scale, 100_000, ton, toff)).run();
        assert_eq!(legacy, shrew);
    }

    #[test]
    fn onoff_attack_does_not_reduce_user_below_fair_share() {
        let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: 100 * SEC, seed: 11 };
        let fair = 100_000;
        let busy = run_fig11_cell(&scale, fair, secs(0.5), secs(1.5));
        // With short off-periods the user keeps at least roughly its fair
        // share (the paper's guarantee).
        assert!(
            busy.avg_user_bps > 0.5 * fair as f64,
            "user got {} bps with fair share {}",
            busy.avg_user_bps,
            fair
        );
    }

    #[test]
    fn long_off_periods_let_users_reclaim_bandwidth() {
        let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: 100 * SEC, seed: 11 };
        let fair = 100_000;
        let short_off = run_fig11_cell(&scale, fair, secs(0.5), secs(1.5));
        let long_off = run_fig11_cell(&scale, fair, secs(0.5), secs(20.0));
        assert!(
            long_off.avg_user_bps > short_off.avg_user_bps,
            "longer off-periods should increase user throughput: {} vs {}",
            long_off.avg_user_bps,
            short_off.avg_user_bps
        );
    }
}
