//! Figure 11: microscopic on-off (shrew-style) attacks.
//!
//! Attackers synchronize bursts of `Ton` at 1 Mbps followed by `Toff` of
//! silence, trying to congest the bottleneck with bursts while keeping
//! their average rate low. The figure plots the average legitimate-user
//! (long-running TCP) throughput against `Toff` for `Ton` of 0.5 s and 4 s,
//! showing that the attack cannot push a user below its fair share and that
//! users reclaim the idle bandwidth as `Toff` grows.

use netfence_sim::prelude::*;

use crate::scenario::{build_dumbbell, collect_outcome, make_defense, DefenseKind, Scale};

/// One point of Figure 11.
#[derive(Debug, Clone)]
pub struct Fig11Point {
    /// On-period length.
    pub ton: Nanos,
    /// Off-period length.
    pub toff: Nanos,
    /// Average legitimate-user throughput in bits per second.
    pub avg_user_bps: f64,
    /// The per-sender fair share if attackers were always on.
    pub fair_share_bps: u64,
}

/// Run one (Ton, Toff) cell with NetFence.
pub fn run_fig11_cell(scale: &Scale, fair_share: u64, ton: Nanos, toff: Nanos) -> Fig11Point {
    let bottleneck_bps = fair_share * scale.senders() as u64;
    let legit_per_as = (scale.hosts_per_as / 4).max(1);
    let colluders = 3.min(scale.src_ases).max(1);
    let d = build_dumbbell(scale, legit_per_as, bottleneck_bps, colluders);
    let defense = make_defense(DefenseKind::NetFence, &d, false);
    let mut sim = Simulator::new(
        build_dumbbell(scale, legit_per_as, bottleneck_bps, colluders).net,
        defense,
        SimConfig { end_time: scale.sim_time, seed: scale.seed, ..Default::default() },
    );
    let mut user_flows = Vec::new();
    let mut attacker_flows = Vec::new();
    for (i, &u) in d.users.iter().enumerate() {
        let victim = d.victim;
        let seed = scale.seed ^ (i as u64 + 1);
        user_flows.push(sim.add_flow((i as u64 % 20) * 50 * MILLI, |id| {
            Box::new(TcpFlow::new(
                id,
                u,
                victim,
                TcpWorkload::LongRunning,
                TcpConfig::default(),
                SimRng::new(seed),
            ))
        }));
    }
    for (i, &a) in d.attackers.iter().enumerate() {
        let colluder = d.colluders[i % d.colluders.len()];
        // All attackers start at the same instant so their bursts are
        // synchronized — the worst case discussed in §5.2.1.
        attacker_flows.push(sim.add_flow(0, |id| {
            Box::new(UdpFlow::new(id, a, colluder, 1_000_000, UdpPattern::OnOff { on: ton, off: toff }))
        }));
    }
    sim.run();
    let outcome = collect_outcome(&sim, &user_flows, &attacker_flows, d.bottleneck, bottleneck_bps);
    Fig11Point {
        ton,
        toff,
        avg_user_bps: outcome.avg_user_bps(scale.sim_time),
        fair_share_bps: fair_share,
    }
}

/// Run the Figure 11 sweep: Ton ∈ {0.5 s, 4 s}, Toff swept from 1.5 s to
/// `max_toff`.
pub fn run_fig11(scale: &Scale, fair_share: u64, toffs_secs: &[f64]) -> Vec<Fig11Point> {
    let mut points = Vec::new();
    for &ton_s in &[0.5f64, 4.0] {
        for &toff_s in toffs_secs {
            points.push(run_fig11_cell(scale, fair_share, secs(ton_s), secs(toff_s)));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn onoff_attack_does_not_reduce_user_below_fair_share() {
        let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: 100 * SEC, seed: 11 };
        let fair = 100_000;
        let busy = run_fig11_cell(&scale, fair, secs(0.5), secs(1.5));
        // With short off-periods the user keeps at least roughly its fair
        // share (the paper's guarantee).
        assert!(
            busy.avg_user_bps > 0.5 * fair as f64,
            "user got {} bps with fair share {}",
            busy.avg_user_bps,
            fair
        );
    }

    #[test]
    fn long_off_periods_let_users_reclaim_bandwidth() {
        let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: 100 * SEC, seed: 11 };
        let fair = 100_000;
        let short_off = run_fig11_cell(&scale, fair, secs(0.5), secs(1.5));
        let long_off = run_fig11_cell(&scale, fair, secs(0.5), secs(20.0));
        assert!(
            long_off.avg_user_bps > short_off.avg_user_bps,
            "longer off-periods should increase user throughput: {} vs {}",
            long_off.avg_user_bps,
            short_off.avg_user_bps
        );
    }
}
