//! Evaluation topologies and scenario plumbing shared by all figure
//! harnesses (§6.3 of the paper).
//!
//! The paper cannot simulate millions of senders, so it fixes the number of
//! simulated nodes and scales the bottleneck capacity down proportionally
//! ("we adopt the evaluation approach in [47]"); this reproduction applies
//! the same trick one more time (see `DESIGN.md`). [`Scale`] captures how
//! many hosts are actually simulated and how much simulated time is run;
//! every figure function takes one, and the experiment binaries/benches
//! choose quick/paper-like presets.

use netfence_core::config::Config;
use netfence_sim::prelude::*;
use netfence_systems::{
    strategic_request_priority, FairQueuingDefense, NetFenceDefense, StopItDefense, TvaDefense,
};

/// Which defense system a run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefenseKind {
    /// NetFence (this paper).
    NetFence,
    /// TVA+ capability baseline.
    Tva,
    /// StopIt filter baseline.
    StopIt,
    /// Per-sender fair queuing at every link.
    Fq,
    /// No defense at all.
    None,
}

impl DefenseKind {
    /// All systems compared in the paper's figures.
    pub const ALL: [DefenseKind; 4] =
        [DefenseKind::Fq, DefenseKind::NetFence, DefenseKind::Tva, DefenseKind::StopIt];

    /// Display name matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            DefenseKind::NetFence => "NetFence",
            DefenseKind::Tva => "TVA+",
            DefenseKind::StopIt => "StopIt",
            DefenseKind::Fq => "FQ",
            DefenseKind::None => "None",
        }
    }
}

/// How large a run is.
#[derive(Debug, Clone, Copy)]
pub struct Scale {
    /// Source ASes (the paper uses 10).
    pub src_ases: usize,
    /// Hosts per source AS (the paper uses 100; scaled down by default).
    pub hosts_per_as: usize,
    /// Simulated duration.
    pub sim_time: Nanos,
    /// RNG seed.
    pub seed: u64,
}

impl Scale {
    /// A tiny scale for unit/integration tests and Criterion benches.
    pub fn tiny() -> Self {
        Scale { src_ases: 4, hosts_per_as: 4, sim_time: 40 * SEC, seed: 7 }
    }

    /// The default experiment scale (finishes in seconds per data point).
    pub fn default_scale() -> Self {
        Scale { src_ases: 10, hosts_per_as: 8, sim_time: 120 * SEC, seed: 7 }
    }

    /// Total simulated senders.
    pub fn senders(&self) -> usize {
        self.src_ases * self.hosts_per_as
    }
}

/// A built dumbbell scenario (Figure 8/9/11 topology): `src_ases` source
/// ASes connect through a transit AS (routers `Rbl`—`Rbr`, the bottleneck)
/// to one destination AS holding the victim and `colluder_ases` extra ASes
/// each holding one colluder.
#[derive(Debug)]
pub struct Dumbbell {
    /// The network.
    pub net: Network,
    /// Protocol-level address of the bottleneck link (Rbl → Rbr).
    pub bottleneck: LinkAddr,
    /// Bottleneck capacity in bits per second.
    pub bottleneck_bps: u64,
    /// Legitimate sender hosts.
    pub users: Vec<HostAddr>,
    /// Attacker hosts.
    pub attackers: Vec<HostAddr>,
    /// The victim destination.
    pub victim: HostAddr,
    /// Colluder destinations (empty when receivers do not collude).
    pub colluders: Vec<HostAddr>,
}

/// Host address of host `k` in source AS `i` (1-based AS index).
pub fn src_host_addr(as_index: usize, host_index: usize) -> HostAddr {
    0x0A00_0000 + (as_index as u32) * 0x100 + host_index as u32 + 1
}

/// Build the dumbbell. `legit_per_as` of each AS's hosts are legitimate
/// users, the rest are attackers. `colluder_ases` extra destination ASes are
/// attached behind the bottleneck.
pub fn build_dumbbell(
    scale: &Scale,
    legit_per_as: usize,
    bottleneck_bps: u64,
    colluder_ases: usize,
) -> Dumbbell {
    let mut b = Network::builder();
    // Transit AS 100 with the two bottleneck routers.
    let rbl = b.router(100, false);
    let rbr = b.router(100, false);
    let access_capacity = (bottleneck_bps * 10).max(100_000_000);
    let bottleneck_idx = b.link(rbl, rbr, bottleneck_bps, 10 * MILLI, QueueKind::Red);
    b.link(rbr, rbl, bottleneck_bps, 10 * MILLI, QueueKind::Red);

    let mut users = Vec::new();
    let mut attackers = Vec::new();
    // Source ASes 1..=N, each with one access router and `hosts_per_as`
    // hosts.
    for asn in 1..=scale.src_ases {
        let ra = b.router(asn as u32, true);
        b.duplex(ra, rbl, access_capacity, 10 * MILLI, QueueKind::DropTail);
        for h in 0..scale.hosts_per_as {
            let addr = src_host_addr(asn, h);
            b.host(addr, asn as u32, ra, access_capacity, MILLI);
            if h < legit_per_as {
                users.push(addr);
            } else {
                attackers.push(addr);
            }
        }
    }

    // Destination AS 200 with the victim.
    let rd = b.router(200, true);
    b.duplex(rbr, rd, access_capacity, 10 * MILLI, QueueKind::DropTail);
    let victim = 0x1400_0001;
    b.host(victim, 200, rd, access_capacity, MILLI);

    // Colluder ASes 201..
    let mut colluders = Vec::new();
    for c in 0..colluder_ases {
        let asn = 201 + c as u32;
        let rc = b.router(asn, true);
        b.duplex(rbr, rc, access_capacity, 10 * MILLI, QueueKind::DropTail);
        let addr = 0x1500_0001 + c as u32 * 0x100;
        b.host(addr, asn, rc, access_capacity, MILLI);
        colluders.push(addr);
    }

    let net = b.build();
    let bottleneck = net.links[bottleneck_idx].addr;
    Dumbbell { net, bottleneck, bottleneck_bps, users, attackers, victim, colluders }
}

/// Construct the defense system for a dumbbell scenario.
///
/// * `suppress_attackers` — whether the victim identifies and wants to block
///   the attackers (the §6.3.1 unwanted-traffic scenario). When false the
///   attackers target the colluders and receivers cooperate with them
///   (§6.3.2).
pub fn make_defense(kind: DefenseKind, d: &Dumbbell, suppress_attackers: bool) -> Box<dyn DefenseSystem> {
    match kind {
        DefenseKind::None => Box::new(NoDefense),
        DefenseKind::Fq => Box::new(FairQueuingDefense::new()),
        DefenseKind::StopIt => {
            let mut s = StopItDefense::new();
            if suppress_attackers {
                s.auto_filter(d.victim);
                for &u in &d.users {
                    s.allow(d.victim, u);
                }
            }
            Box::new(s)
        }
        DefenseKind::Tva => {
            let mut t = TvaDefense::new();
            if suppress_attackers {
                t.deny_by_default(d.victim);
                for &u in &d.users {
                    t.allow(d.victim, u);
                }
            }
            Box::new(t)
        }
        DefenseKind::NetFence => {
            let mut n = NetFenceDefense::new(netfence_config());
            if suppress_attackers {
                for &a in &d.attackers {
                    n.suppress_sender(d.victim, a);
                    n.set_request_priority(a, attacker_request_priority(d));
                }
            }
            Box::new(n)
        }
    }
}

/// The NetFence protocol configuration used by the experiments: Figure 3
/// parameters with `Ta`/`Tb` shortened so that simulated minutes (rather
/// than hours) exercise cycle termination.
pub fn netfence_config() -> Config {
    let mut cfg = Config::default();
    cfg.ta = 600 * SEC;
    cfg.tb = 600 * SEC;
    cfg
}

/// The strategic request priority attackers pick in the unwanted-traffic
/// scenario (§6.3.1): the highest level at which their aggregate traffic can
/// still saturate the bottleneck's request channel.
pub fn attacker_request_priority(d: &Dumbbell) -> u8 {
    let cfg = Config::default();
    strategic_request_priority(
        d.attackers.len() as u64,
        d.bottleneck_bps as f64 * cfg.request_channel_fraction,
        92.0,
        cfg.request_tokens_per_sec(),
        cfg.max_request_priority,
    )
}

/// Per-flow roles attached to a finished run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// (flow id, progress) of legitimate users.
    pub users: Vec<FlowProgress>,
    /// (flow id, progress) of attackers.
    pub attackers: Vec<FlowProgress>,
    /// Bottleneck utilization over the run.
    pub bottleneck_utilization: f64,
    /// Loss rate at the bottleneck.
    pub bottleneck_loss: f64,
}

impl RunOutcome {
    /// Average goodput (bps) across users over the run.
    pub fn avg_user_bps(&self, sim_time: Nanos) -> f64 {
        avg(self.users.iter().map(|p| p.goodput_bps(0, sim_time)))
    }

    /// Average goodput (bps) across attackers over the run.
    pub fn avg_attacker_bps(&self, sim_time: Nanos) -> f64 {
        avg(self.attackers.iter().map(|p| p.goodput_bps(0, sim_time)))
    }

    /// Throughput ratio (users / attackers), Figure 9's metric.
    pub fn throughput_ratio(&self, sim_time: Nanos) -> f64 {
        let a = self.avg_attacker_bps(sim_time);
        if a == 0.0 {
            f64::INFINITY
        } else {
            self.avg_user_bps(sim_time) / a
        }
    }

    /// Jain fairness index across legitimate users' goodputs.
    pub fn user_fairness(&self, sim_time: Nanos) -> f64 {
        let v: Vec<f64> = self.users.iter().map(|p| p.goodput_bps(0, sim_time)).collect();
        fairness_index(&v)
    }

    /// Average completed-transfer time across users, in seconds.
    pub fn avg_user_transfer_secs(&self) -> Option<f64> {
        let times: Vec<f64> = self.users.iter().filter_map(|p| p.avg_transfer_secs()).collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        }
    }

    /// Fraction of attempted user transfers that completed.
    pub fn user_completion_ratio(&self) -> f64 {
        let done: usize = self.users.iter().map(|p| p.completions.len()).sum();
        let failed: u64 = self.users.iter().map(|p| p.failed_transfers).sum();
        let attempted = done as u64 + failed;
        if attempted == 0 {
            1.0
        } else {
            done as f64 / attempted as f64
        }
    }
}

fn avg(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Collect per-role progress and bottleneck statistics from a finished
/// simulation.
pub fn collect_outcome(
    sim: &Simulator,
    user_flows: &[FlowId],
    attacker_flows: &[FlowId],
    bottleneck: LinkAddr,
    bottleneck_bps: u64,
) -> RunOutcome {
    RunOutcome {
        users: user_flows.iter().map(|&f| sim.progress(f)).collect(),
        attackers: attacker_flows.iter().map(|&f| sim.progress(f)).collect(),
        bottleneck_utilization: sim.metrics.utilization(bottleneck, bottleneck_bps),
        bottleneck_loss: sim.metrics.loss_rate(bottleneck),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dumbbell_shape() {
        let scale = Scale { src_ases: 3, hosts_per_as: 4, sim_time: SEC, seed: 1 };
        let d = build_dumbbell(&scale, 1, 10_000_000, 2);
        assert_eq!(d.users.len(), 3);
        assert_eq!(d.attackers.len(), 9);
        assert_eq!(d.colluders.len(), 2);
        // Every source host routes to the victim through the bottleneck.
        let bneck_idx = d.net.link_by_addr(d.bottleneck).unwrap();
        for &u in d.users.iter().chain(&d.attackers) {
            let mut node = d.net.host_node(u);
            let mut crossed = false;
            for _ in 0..10 {
                match d.net.next_hop(node, d.victim) {
                    Some(l) => {
                        if l == bneck_idx {
                            crossed = true;
                        }
                        node = d.net.links[l].to;
                    }
                    None => break,
                }
                if d.net.nodes[node.0].host_addr() == Some(d.victim) {
                    break;
                }
            }
            assert!(crossed, "host {u:#x} does not cross the bottleneck");
        }
    }

    #[test]
    fn strategic_priority_is_reasonable() {
        let scale = Scale { src_ases: 10, hosts_per_as: 10, sim_time: SEC, seed: 1 };
        let d = build_dumbbell(&scale, 1, 10_000_000, 0);
        let p = attacker_request_priority(&d);
        assert!(p >= 1 && p <= 12, "priority {p}");
    }

    #[test]
    fn defense_factory_builds_all_kinds() {
        let scale = Scale::tiny();
        let d = build_dumbbell(&scale, 1, 10_000_000, 1);
        for kind in [DefenseKind::NetFence, DefenseKind::Tva, DefenseKind::StopIt, DefenseKind::Fq, DefenseKind::None] {
            let def = make_defense(kind, &d, true);
            assert!(!def.name().is_empty());
        }
    }
}
