//! The uniform result of every scenario run.
//!
//! A [`Record`] carries the full per-flow progress of every role,
//! per-bottleneck link statistics and the deployment's typed
//! [`DefenseReport`], and derives from them every metric the paper's
//! figures report (average goodput, throughput ratio, Jain fairness,
//! transfer times, completion ratios, utilization, loss). All harnesses,
//! benches and tests read these accessors — and the report's counters —
//! instead of keeping per-figure result structs or downcasting into
//! defense internals.

use netfence_sim::prelude::*;

pub use netfence_sim::deploy::DefenseReport;

use crate::spec::DefenseKind;

/// A role tag: which side of the attack a flow is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Legitimate user.
    User,
    /// Attacker.
    Attacker,
}

/// Per-flow progress of one named role group (e.g. `"users"` on a dumbbell,
/// `"A-users"` on the parking lot).
#[derive(Debug, Clone, PartialEq)]
pub struct RoleSeries {
    /// Group name.
    pub group: String,
    /// User or attacker.
    pub role: Role,
    /// Per-flow progress, in member order.
    pub flows: Vec<FlowProgress>,
    /// Typed drop budget summed over the group's flows: how many of the
    /// group's packets each defense/queue mechanism discarded.
    pub drops: DropBudget,
}

impl RoleSeries {
    /// Average goodput across the group's flows over `[0, sim_time]`.
    pub fn avg_bps(&self, sim_time: Nanos) -> f64 {
        avg(self.flows.iter().map(|p| p.goodput_bps(0, sim_time)))
    }

    /// Per-flow goodputs over `[0, sim_time]`.
    pub fn goodputs_bps(&self, sim_time: Nanos) -> Vec<f64> {
        self.flows.iter().map(|p| p.goodput_bps(0, sim_time)).collect()
    }
}

/// One goodput sample: cumulative delivered bytes of each role at a
/// sampled instant (enabled by
/// [`ScenarioSpec::sampled`](crate::spec::ScenarioSpec::sampled)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoodputSample {
    /// Sample instant.
    pub at: Nanos,
    /// Cumulative bytes delivered by all user flows.
    pub user_bytes: u64,
    /// Cumulative bytes delivered by all attacker flows.
    pub attacker_bytes: u64,
}

/// One fault window injected into the run: what hit, when, and when it
/// cleared — the instants the record's recovery metrics are measured
/// against. (For one-shot faults like a reboot, `clear_at == at`: the
/// disruption is instantaneous but its aftermath is not.)
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultWindowRecord {
    /// Fault kind label (`"link-failure"`, `"reboot"`, `"key-desync"`,
    /// `"clock-skew"`, `"memory-pressure"`).
    pub kind: String,
    /// When the fault hit.
    pub at: Nanos,
    /// When it cleared.
    pub clear_at: Nanos,
}

/// Statistics of one monitored (bottleneck) link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStats {
    /// Link label ("bottleneck", "L1", "L2").
    pub label: String,
    /// Configured capacity, bits per second.
    pub capacity_bps: u64,
    /// Utilization over the run.
    pub utilization: f64,
    /// Loss rate over the run.
    pub loss: f64,
}

/// The uniform outcome of one [`Runner`](crate::runner::Runner) run.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Scenario name (from the spec).
    pub name: String,
    /// Defense system that ran.
    pub defense: DefenseKind,
    /// Simulated duration.
    pub sim_time: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Total simulated senders.
    pub senders: usize,
    /// The per-sender max-min fair share on the tightest bottleneck.
    pub fair_share_bps: f64,
    /// Per-role flow series.
    pub roles: Vec<RoleSeries>,
    /// Per-bottleneck statistics (first entry = the tightest/primary one).
    pub links: Vec<LinkStats>,
    /// The deployed defense's merged typed counters (rate limiters,
    /// filters, capabilities, monitoring state, deployment extent).
    pub report: DefenseReport,
    /// Periodic goodput samples (empty unless the spec enabled sampling).
    pub samples: Vec<GoodputSample>,
    /// When the earliest attacker starts sending (`None` without
    /// attackers), the reference instant of [`Record::reaction_secs`].
    pub attack_start: Option<Nanos>,
    /// The fault windows injected into the run, in plan order (empty
    /// without a fault plan — the default, preserving record equality with
    /// pre-fault runs). Reference instants of
    /// [`Record::fault_recovery_secs`] and [`Record::availability`].
    pub faults: Vec<FaultWindowRecord>,
    /// Engine profiling counters for the run (events processed, forwards,
    /// enqueues/dequeues, drops) — deterministic, always collected.
    pub engine: EngineProfile,
}

impl Record {
    /// The named role group, if present.
    pub fn group(&self, name: &str) -> Option<&RoleSeries> {
        self.roles.iter().find(|r| r.group == name)
    }

    /// Average goodput of a named group, bits per second.
    pub fn group_avg_bps(&self, name: &str) -> f64 {
        self.group(name).map(|g| g.avg_bps(self.sim_time)).unwrap_or(0.0)
    }

    /// Every user flow across all groups.
    pub fn users(&self) -> impl Iterator<Item = &FlowProgress> {
        self.roles.iter().filter(|r| r.role == Role::User).flat_map(|r| r.flows.iter())
    }

    /// Every attacker flow across all groups.
    pub fn attackers(&self) -> impl Iterator<Item = &FlowProgress> {
        self.roles.iter().filter(|r| r.role == Role::Attacker).flat_map(|r| r.flows.iter())
    }

    /// Average goodput (bps) across all users.
    pub fn avg_user_bps(&self) -> f64 {
        avg(self.users().map(|p| p.goodput_bps(0, self.sim_time)))
    }

    /// Average goodput (bps) across all attackers.
    pub fn avg_attacker_bps(&self) -> f64 {
        avg(self.attackers().map(|p| p.goodput_bps(0, self.sim_time)))
    }

    /// Throughput ratio (users / attackers), Figure 9's metric.
    pub fn throughput_ratio(&self) -> f64 {
        let a = self.avg_attacker_bps();
        if a == 0.0 {
            f64::INFINITY
        } else {
            self.avg_user_bps() / a
        }
    }

    /// Jain fairness index across legitimate users' goodputs.
    pub fn user_fairness(&self) -> f64 {
        let v: Vec<f64> = self.users().map(|p| p.goodput_bps(0, self.sim_time)).collect();
        fairness_index(&v)
    }

    /// Average completed-transfer time across users, in seconds.
    pub fn avg_user_transfer_secs(&self) -> Option<f64> {
        let times: Vec<f64> = self.users().filter_map(|p| p.avg_transfer_secs()).collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        }
    }

    /// Fraction of attempted user transfers that completed.
    pub fn user_completion_ratio(&self) -> f64 {
        let done: usize = self.users().map(|p| p.completions.len()).sum();
        let failed: u64 = self.users().map(|p| p.failed_transfers).sum();
        let attempted = done as u64 + failed;
        if attempted == 0 {
            1.0
        } else {
            done as f64 / attempted as f64
        }
    }

    /// Defense reaction time in seconds: attack start → the first instant
    /// user goodput sustainably recovers to ≥ 90% of its pre-attack level.
    ///
    /// Computed from the periodic [`GoodputSample`]s: the baseline is the
    /// mean per-window user goodput over the windows ending at or before
    /// the attack start; recovery is the first post-attack window that
    /// reaches 90% of it *and* is followed only by windows whose average
    /// also holds the threshold (so a transient spike mid-collapse does
    /// not count). Returns `None` when sampling was off, no pre-attack
    /// baseline exists, or the goodput never recovers within the run —
    /// callers treat `None` as "did not react".
    pub fn reaction_secs(&self) -> Option<f64> {
        let attack_start = self.attack_start?;
        let deltas = self.window_deltas();
        let pre: Vec<u64> =
            deltas.iter().filter(|&&(_, end, _)| end <= attack_start).map(|&(_, _, b)| b).collect();
        if pre.is_empty() {
            return None;
        }
        let baseline = pre.iter().sum::<u64>() as f64 / pre.len() as f64;
        if baseline <= 0.0 {
            return None;
        }
        sustained_recovery_end(&deltas, attack_start, baseline * 0.9)
            .map(|end| (end.saturating_sub(attack_start)) as f64 / SEC as f64)
    }

    /// Per-window user byte deltas from the goodput samples: window i
    /// spans (at[i-1], at[i]], with window 0 spanning (0, at[0]].
    fn window_deltas(&self) -> Vec<(Nanos, Nanos, u64)> {
        self.samples
            .iter()
            .scan((0, 0u64), |(prev_at, prev_bytes), s| {
                let d = (*prev_at, s.at, s.user_bytes.saturating_sub(*prev_bytes));
                *prev_at = s.at;
                *prev_bytes = s.user_bytes;
                Some(d)
            })
            .collect()
    }

    /// Recovery time of the `index`-th fault window, in seconds: fault
    /// clearance → the first instant user goodput sustainably returns to
    /// ≥ 90% of its pre-fault level.
    ///
    /// The pre-fault baseline is the mean per-window user goodput over the
    /// (up to [`BASELINE_WINDOWS`]) sample windows ending at or before the
    /// fault hit — a *trailing* baseline, so it reflects the steady state
    /// right before this fault even when an attack (already absorbed by
    /// the defense) or an earlier fault reshaped goodput since the start
    /// of the run. Sustained means the remaining windows also hold the
    /// threshold on average, exactly like [`Record::reaction_secs`].
    /// `None` = sampling off, no measurable baseline, or never recovered
    /// within the run.
    pub fn fault_recovery_secs(&self, index: usize) -> Option<f64> {
        let w = self.faults.get(index)?;
        let deltas = self.window_deltas();
        let baseline = trailing_baseline(&deltas, w.at)?;
        sustained_recovery_end(&deltas, w.clear_at, baseline * 0.9)
            .map(|end| (end.saturating_sub(w.clear_at)) as f64 / SEC as f64)
    }

    /// The slowest per-window [`Record::fault_recovery_secs`] of the run —
    /// the chaos sweep's headline metric. Windows that never recover (or
    /// cannot be measured) are censored at the end of the run: they count
    /// as `sim_time - clear_at`, so "worse" stays monotone instead of
    /// disappearing into `None`. `None` only without fault windows.
    pub fn worst_fault_recovery_secs(&self) -> Option<f64> {
        if self.faults.is_empty() {
            return None;
        }
        let mut worst: f64 = 0.0;
        for (i, w) in self.faults.iter().enumerate() {
            let censored = self.sim_time.saturating_sub(w.clear_at) as f64 / SEC as f64;
            worst = worst.max(self.fault_recovery_secs(i).unwrap_or(censored));
        }
        Some(worst)
    }

    /// Availability under faults: the fraction of sample windows from the
    /// first fault onward whose user goodput held ≥ 90% of the pre-fault
    /// baseline (trailing mean, as in [`Record::fault_recovery_secs`]).
    /// 1.0 = the faults never dented goodput below threshold; 0.0 = it
    /// never held again. `None` without fault windows, sampling, or a
    /// measurable baseline.
    pub fn availability(&self) -> Option<f64> {
        let first = self.faults.iter().map(|w| w.at).min()?;
        let deltas = self.window_deltas();
        let baseline = trailing_baseline(&deltas, first)?;
        let threshold = baseline * 0.9;
        let post: Vec<u64> =
            deltas.iter().filter(|&&(start, _, _)| start >= first).map(|&(_, _, b)| b).collect();
        if post.is_empty() {
            return None;
        }
        let ok = post.iter().filter(|&&b| b as f64 >= threshold).count();
        Some(ok as f64 / post.len() as f64)
    }

    /// Utilization of the primary bottleneck.
    pub fn bottleneck_utilization(&self) -> f64 {
        self.links.first().map(|l| l.utilization).unwrap_or(0.0)
    }

    /// Loss rate at the primary bottleneck.
    pub fn bottleneck_loss(&self) -> f64 {
        self.links.first().map(|l| l.loss).unwrap_or(0.0)
    }
}

/// How many trailing sample windows form a fault's pre-fault baseline.
pub const BASELINE_WINDOWS: usize = 8;

/// Mean per-window goodput over the (up to [`BASELINE_WINDOWS`]) windows
/// ending at or before `t`; `None` when no window ends by `t` or the mean
/// is zero (no measurable baseline).
fn trailing_baseline(deltas: &[(Nanos, Nanos, u64)], t: Nanos) -> Option<f64> {
    let pre: Vec<u64> =
        deltas.iter().filter(|&&(_, end, _)| end <= t).map(|&(_, _, b)| b).collect();
    if pre.is_empty() {
        return None;
    }
    let tail = &pre[pre.len().saturating_sub(BASELINE_WINDOWS)..];
    let baseline = tail.iter().sum::<u64>() as f64 / tail.len() as f64;
    (baseline > 0.0).then_some(baseline)
}

/// The end instant of the first window starting at or after `from` that
/// holds `threshold` *sustainably* — the remaining windows must hold it on
/// average too (individual windows may dip; TCP goodput is bursty at
/// sample granularity). `None` = never within the run.
fn sustained_recovery_end(
    deltas: &[(Nanos, Nanos, u64)],
    from: Nanos,
    threshold: f64,
) -> Option<Nanos> {
    let post: Vec<&(Nanos, Nanos, u64)> =
        deltas.iter().filter(|&&(start, _, _)| start >= from).collect();
    for (i, &&(_, end, bytes)) in post.iter().enumerate() {
        if (bytes as f64) < threshold {
            continue;
        }
        let rest = &post[i..];
        let rest_avg = rest.iter().map(|&&(_, _, b)| b as f64).sum::<f64>() / rest.len() as f64;
        if rest_avg >= threshold {
            return Some(end);
        }
    }
    None
}

fn avg(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(delivered: u64) -> FlowProgress {
        FlowProgress { delivered_bytes: delivered, ..Default::default() }
    }

    fn sample() -> Record {
        Record {
            name: "t".into(),
            defense: DefenseKind::NetFence,
            sim_time: 10 * SEC,
            seed: 1,
            senders: 4,
            fair_share_bps: 1000.0,
            roles: vec![
                RoleSeries {
                    group: "users".into(),
                    role: Role::User,
                    flows: vec![progress(1000), progress(3000)],
                    drops: DropBudget::default(),
                },
                RoleSeries {
                    group: "attackers".into(),
                    role: Role::Attacker,
                    flows: vec![progress(1000)],
                    drops: DropBudget::default(),
                },
            ],
            links: vec![LinkStats {
                label: "bottleneck".into(),
                capacity_bps: 4000,
                utilization: 0.5,
                loss: 0.1,
            }],
            report: DefenseReport::default(),
            samples: Vec::new(),
            attack_start: None,
            faults: Vec::new(),
            engine: EngineProfile::default(),
        }
    }

    /// Samples tracing: healthy baseline (1000 B/window), collapse after
    /// the attack at 4 s, recovery from 8 s on.
    fn sampled() -> Record {
        let user_bytes = [1000, 2000, 3000, 4000, 4100, 4200, 4300, 5300, 6300, 7300];
        let samples = user_bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| GoodputSample {
                at: (i as u64 + 1) * SEC,
                user_bytes: b,
                attacker_bytes: 0,
            })
            .collect();
        Record { samples, attack_start: Some(4 * SEC), ..sample() }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        // 1000 bytes over 10 s = 800 bps; mean of 800 and 2400 = 1600.
        assert_eq!(r.avg_user_bps(), 1600.0);
        assert_eq!(r.avg_attacker_bps(), 800.0);
        assert_eq!(r.throughput_ratio(), 2.0);
        assert!(r.user_fairness() > 0.7 && r.user_fairness() < 1.0);
        assert_eq!(r.bottleneck_utilization(), 0.5);
        assert_eq!(r.bottleneck_loss(), 0.1);
        assert_eq!(r.group_avg_bps("users"), 1600.0);
        assert_eq!(r.group_avg_bps("missing"), 0.0);
    }

    #[test]
    fn completion_ratio_counts_failures() {
        let mut r = sample();
        r.roles[0].flows[0].completions.push((0, SEC, 100));
        r.roles[0].flows[1].failed_transfers = 1;
        assert_eq!(r.user_completion_ratio(), 0.5);
        // No attempts at all counts as complete.
        let empty = Record { roles: vec![], ..sample() };
        assert_eq!(empty.user_completion_ratio(), 1.0);
    }

    #[test]
    fn reaction_time_measures_recovery_after_collapse() {
        let r = sampled();
        // Baseline 1000 B/s; collapse to 100 B/s at 4 s; first sustained
        // ≥ 900 B window ends at 8 s → reaction 4 s.
        assert_eq!(r.reaction_secs(), Some(4.0));
    }

    #[test]
    fn reaction_time_needs_samples_attackers_and_recovery() {
        assert_eq!(sample().reaction_secs(), None, "no samples, no metric");
        let r = Record { attack_start: None, ..sampled() };
        assert_eq!(r.reaction_secs(), None, "no attack, no metric");
        let mut r = sampled();
        // Chop the trace right after the collapse: goodput never recovers.
        r.samples.truncate(7);
        assert_eq!(r.reaction_secs(), None, "no recovery, no metric");
    }

    #[test]
    fn reaction_time_ignores_transient_spikes() {
        let mut r = sampled();
        // One good window mid-collapse (5→6 s) followed by more collapse:
        // the spike alone must not count as recovery.
        let bytes = [1000, 2000, 3000, 4000, 4100, 5100, 5200, 5300, 6300, 7300];
        for (s, &b) in r.samples.iter_mut().zip(bytes.iter()) {
            s.user_bytes = b;
        }
        // True recovery only from 8 s on: first sustained window ends 9 s.
        assert_eq!(r.reaction_secs(), Some(5.0), "spike at 6 s must not count");
    }

    #[test]
    fn reaction_time_with_attack_at_time_zero_has_no_baseline() {
        // Attack from the very first instant: no pre-attack window exists,
        // so no baseline can be computed and the metric is undefined.
        let r = Record { attack_start: Some(0), ..sampled() };
        assert_eq!(r.reaction_secs(), None, "t=0 attack has no pre-attack baseline");
    }

    #[test]
    fn reaction_time_when_goodput_never_recovers_is_none() {
        // Collapse at 4 s that persists to the end of the run: every
        // post-attack window stays below 90% of the 1000 B baseline.
        let mut r = sampled();
        let bytes = [1000, 2000, 3000, 4000, 4100, 4200, 4300, 4400, 4500, 4600];
        for (s, &b) in r.samples.iter_mut().zip(bytes.iter()) {
            s.user_bytes = b;
        }
        assert_eq!(r.reaction_secs(), None, "never-recovering run must not report a reaction");
    }

    #[test]
    fn reaction_time_on_a_single_sample_run() {
        // One sample only. If the attack starts after that window, there is
        // no post-attack window to recover in; if it starts at 0, there is
        // no baseline. Either way the metric must be None, not a panic.
        let mut r = sampled();
        r.samples.truncate(1);
        r.attack_start = Some(2 * SEC);
        assert_eq!(r.reaction_secs(), None, "single pre-attack sample, nothing after");
        r.attack_start = Some(0);
        assert_eq!(r.reaction_secs(), None, "single sample with t=0 attack");
    }

    /// Healthy 1000 B/s baseline, a fault window [3 s, 5 s] collapsing
    /// goodput, recovery from 8 s on.
    fn faulted() -> Record {
        let user_bytes = [1000, 2000, 3000, 3100, 3200, 3300, 3400, 4400, 5400, 6400];
        let samples = user_bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| GoodputSample {
                at: (i as u64 + 1) * SEC,
                user_bytes: b,
                attacker_bytes: 0,
            })
            .collect();
        let faults =
            vec![FaultWindowRecord { kind: "link-failure".into(), at: 3 * SEC, clear_at: 5 * SEC }];
        Record { samples, faults, ..sample() }
    }

    #[test]
    fn fault_recovery_measures_from_clearance_to_sustained_return() {
        let r = faulted();
        // Baseline 1000 B/s over windows 1–3; first sustained ≥ 900 B
        // window after the 5 s clearance ends at 8 s → recovery 3 s.
        assert_eq!(r.fault_recovery_secs(0), Some(3.0));
        assert_eq!(r.worst_fault_recovery_secs(), Some(3.0));
        // Out-of-range window index: no metric, no panic.
        assert_eq!(r.fault_recovery_secs(1), None);
    }

    #[test]
    fn availability_counts_threshold_holding_windows_after_the_first_fault() {
        let r = faulted();
        // Windows starting at ≥ 3 s: 7 of them (3→4 … 9→10 s); the three
        // from 7 s on hold ≥ 900 B.
        assert_eq!(r.availability(), Some(3.0 / 7.0));
    }

    #[test]
    fn fault_metrics_without_faults_or_samples_are_none() {
        assert_eq!(sample().worst_fault_recovery_secs(), None, "no faults");
        assert_eq!(sample().availability(), None, "no faults");
        let mut r = faulted();
        r.samples.clear();
        assert_eq!(r.fault_recovery_secs(0), None, "no samples, no baseline");
        assert_eq!(r.availability(), None, "no samples");
        // Never recovering: the per-window metric is None but the worst-
        // case metric censors at the end of the run.
        let mut r = faulted();
        let bytes = [1000, 2000, 3000, 3100, 3200, 3300, 3400, 3500, 3600, 3700];
        for (s, &b) in r.samples.iter_mut().zip(bytes.iter()) {
            s.user_bytes = b;
        }
        assert_eq!(r.fault_recovery_secs(0), None);
        assert_eq!(r.worst_fault_recovery_secs(), Some(5.0), "censored at sim_time - clear_at");
        assert_eq!(r.availability(), Some(0.0));
    }

    #[test]
    fn fault_baseline_is_trailing_not_global() {
        // An attack collapses goodput long before the fault; the defense
        // restores it to 500 B/s (the new steady state). The fault baseline
        // must be the trailing 500 B/s, not a mean polluted by the
        // 1000 B/s pre-attack era — recovery back to 500 B/s counts.
        let user_bytes: Vec<u64> = {
            let deltas = [
                1000, 1000, 1000, 100, 100, 500, 500, 500, 500, 500, 500, 500, 500, // steady
                50, 50, // fault at 13 s, cleared 15 s
                500, 500, 500, 500, 500, // recovered
            ];
            deltas
                .iter()
                .scan(0u64, |acc, d| {
                    *acc += d;
                    Some(*acc)
                })
                .collect()
        };
        let samples: Vec<GoodputSample> = user_bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| GoodputSample {
                at: (i as u64 + 1) * SEC,
                user_bytes: b,
                attacker_bytes: 0,
            })
            .collect();
        let faults =
            vec![FaultWindowRecord { kind: "reboot".into(), at: 13 * SEC, clear_at: 13 * SEC }];
        let r = Record { samples, faults, sim_time: 20 * SEC, ..sample() };
        // Trailing baseline = 500 B/s; first sustained ≥ 450 B window after
        // the 13 s clearance ends at 16 s → 3 s recovery.
        assert_eq!(r.fault_recovery_secs(0), Some(3.0));
    }

    #[test]
    fn zero_attacker_ratio_is_infinite() {
        let mut r = sample();
        r.roles[1].flows.clear();
        assert!(r.throughput_ratio().is_infinite());
    }
}
