//! The uniform result of every scenario run.
//!
//! A [`Record`] carries the full per-flow progress of every role,
//! per-bottleneck link statistics and the deployment's typed
//! [`DefenseReport`], and derives from them every metric the paper's
//! figures report (average goodput, throughput ratio, Jain fairness,
//! transfer times, completion ratios, utilization, loss). All harnesses,
//! benches and tests read these accessors — and the report's counters —
//! instead of keeping per-figure result structs or downcasting into
//! defense internals.

use netfence_sim::prelude::*;

pub use netfence_sim::deploy::DefenseReport;

use crate::spec::DefenseKind;

/// A role tag: which side of the attack a flow is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Legitimate user.
    User,
    /// Attacker.
    Attacker,
}

/// Per-flow progress of one named role group (e.g. `"users"` on a dumbbell,
/// `"A-users"` on the parking lot).
#[derive(Debug, Clone, PartialEq)]
pub struct RoleSeries {
    /// Group name.
    pub group: String,
    /// User or attacker.
    pub role: Role,
    /// Per-flow progress, in member order.
    pub flows: Vec<FlowProgress>,
    /// Typed drop budget summed over the group's flows: how many of the
    /// group's packets each defense/queue mechanism discarded.
    pub drops: DropBudget,
}

impl RoleSeries {
    /// Average goodput across the group's flows over `[0, sim_time]`.
    pub fn avg_bps(&self, sim_time: Nanos) -> f64 {
        avg(self.flows.iter().map(|p| p.goodput_bps(0, sim_time)))
    }

    /// Per-flow goodputs over `[0, sim_time]`.
    pub fn goodputs_bps(&self, sim_time: Nanos) -> Vec<f64> {
        self.flows.iter().map(|p| p.goodput_bps(0, sim_time)).collect()
    }
}

/// One goodput sample: cumulative delivered bytes of each role at a
/// sampled instant (enabled by
/// [`ScenarioSpec::sampled`](crate::spec::ScenarioSpec::sampled)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoodputSample {
    /// Sample instant.
    pub at: Nanos,
    /// Cumulative bytes delivered by all user flows.
    pub user_bytes: u64,
    /// Cumulative bytes delivered by all attacker flows.
    pub attacker_bytes: u64,
}

/// Statistics of one monitored (bottleneck) link.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkStats {
    /// Link label ("bottleneck", "L1", "L2").
    pub label: String,
    /// Configured capacity, bits per second.
    pub capacity_bps: u64,
    /// Utilization over the run.
    pub utilization: f64,
    /// Loss rate over the run.
    pub loss: f64,
}

/// The uniform outcome of one [`Runner`](crate::runner::Runner) run.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Scenario name (from the spec).
    pub name: String,
    /// Defense system that ran.
    pub defense: DefenseKind,
    /// Simulated duration.
    pub sim_time: Nanos,
    /// RNG seed.
    pub seed: u64,
    /// Total simulated senders.
    pub senders: usize,
    /// The per-sender max-min fair share on the tightest bottleneck.
    pub fair_share_bps: f64,
    /// Per-role flow series.
    pub roles: Vec<RoleSeries>,
    /// Per-bottleneck statistics (first entry = the tightest/primary one).
    pub links: Vec<LinkStats>,
    /// The deployed defense's merged typed counters (rate limiters,
    /// filters, capabilities, monitoring state, deployment extent).
    pub report: DefenseReport,
    /// Periodic goodput samples (empty unless the spec enabled sampling).
    pub samples: Vec<GoodputSample>,
    /// When the earliest attacker starts sending (`None` without
    /// attackers), the reference instant of [`Record::reaction_secs`].
    pub attack_start: Option<Nanos>,
    /// Engine profiling counters for the run (events processed, forwards,
    /// enqueues/dequeues, drops) — deterministic, always collected.
    pub engine: EngineProfile,
}

impl Record {
    /// The named role group, if present.
    pub fn group(&self, name: &str) -> Option<&RoleSeries> {
        self.roles.iter().find(|r| r.group == name)
    }

    /// Average goodput of a named group, bits per second.
    pub fn group_avg_bps(&self, name: &str) -> f64 {
        self.group(name).map(|g| g.avg_bps(self.sim_time)).unwrap_or(0.0)
    }

    /// Every user flow across all groups.
    pub fn users(&self) -> impl Iterator<Item = &FlowProgress> {
        self.roles.iter().filter(|r| r.role == Role::User).flat_map(|r| r.flows.iter())
    }

    /// Every attacker flow across all groups.
    pub fn attackers(&self) -> impl Iterator<Item = &FlowProgress> {
        self.roles.iter().filter(|r| r.role == Role::Attacker).flat_map(|r| r.flows.iter())
    }

    /// Average goodput (bps) across all users.
    pub fn avg_user_bps(&self) -> f64 {
        avg(self.users().map(|p| p.goodput_bps(0, self.sim_time)))
    }

    /// Average goodput (bps) across all attackers.
    pub fn avg_attacker_bps(&self) -> f64 {
        avg(self.attackers().map(|p| p.goodput_bps(0, self.sim_time)))
    }

    /// Throughput ratio (users / attackers), Figure 9's metric.
    pub fn throughput_ratio(&self) -> f64 {
        let a = self.avg_attacker_bps();
        if a == 0.0 {
            f64::INFINITY
        } else {
            self.avg_user_bps() / a
        }
    }

    /// Jain fairness index across legitimate users' goodputs.
    pub fn user_fairness(&self) -> f64 {
        let v: Vec<f64> = self.users().map(|p| p.goodput_bps(0, self.sim_time)).collect();
        fairness_index(&v)
    }

    /// Average completed-transfer time across users, in seconds.
    pub fn avg_user_transfer_secs(&self) -> Option<f64> {
        let times: Vec<f64> = self.users().filter_map(|p| p.avg_transfer_secs()).collect();
        if times.is_empty() {
            None
        } else {
            Some(times.iter().sum::<f64>() / times.len() as f64)
        }
    }

    /// Fraction of attempted user transfers that completed.
    pub fn user_completion_ratio(&self) -> f64 {
        let done: usize = self.users().map(|p| p.completions.len()).sum();
        let failed: u64 = self.users().map(|p| p.failed_transfers).sum();
        let attempted = done as u64 + failed;
        if attempted == 0 {
            1.0
        } else {
            done as f64 / attempted as f64
        }
    }

    /// Defense reaction time in seconds: attack start → the first instant
    /// user goodput sustainably recovers to ≥ 90% of its pre-attack level.
    ///
    /// Computed from the periodic [`GoodputSample`]s: the baseline is the
    /// mean per-window user goodput over the windows ending at or before
    /// the attack start; recovery is the first post-attack window that
    /// reaches 90% of it *and* is followed only by windows whose average
    /// also holds the threshold (so a transient spike mid-collapse does
    /// not count). Returns `None` when sampling was off, no pre-attack
    /// baseline exists, or the goodput never recovers within the run —
    /// callers treat `None` as "did not react".
    pub fn reaction_secs(&self) -> Option<f64> {
        let attack_start = self.attack_start?;
        // Per-window user byte deltas: window i spans (at[i-1], at[i]],
        // with window 0 spanning (0, at[0]].
        let deltas: Vec<(Nanos, Nanos, u64)> = self
            .samples
            .iter()
            .scan((0, 0u64), |(prev_at, prev_bytes), s| {
                let d = (*prev_at, s.at, s.user_bytes.saturating_sub(*prev_bytes));
                *prev_at = s.at;
                *prev_bytes = s.user_bytes;
                Some(d)
            })
            .collect();
        let pre: Vec<u64> =
            deltas.iter().filter(|&&(_, end, _)| end <= attack_start).map(|&(_, _, b)| b).collect();
        if pre.is_empty() {
            return None;
        }
        let baseline = pre.iter().sum::<u64>() as f64 / pre.len() as f64;
        if baseline <= 0.0 {
            return None;
        }
        let threshold = baseline * 0.9;
        let post: Vec<&(Nanos, Nanos, u64)> =
            deltas.iter().filter(|&&(start, _, _)| start >= attack_start).collect();
        for (i, &&(_, end, bytes)) in post.iter().enumerate() {
            if (bytes as f64) < threshold {
                continue;
            }
            // Sustained: the remaining windows must *on average* hold the
            // threshold too (individual windows may dip — TCP goodput is
            // bursty at sample granularity).
            let rest = &post[i..];
            let rest_avg = rest.iter().map(|&&(_, _, b)| b as f64).sum::<f64>() / rest.len() as f64;
            if rest_avg >= threshold {
                return Some((end.saturating_sub(attack_start)) as f64 / SEC as f64);
            }
        }
        None
    }

    /// Utilization of the primary bottleneck.
    pub fn bottleneck_utilization(&self) -> f64 {
        self.links.first().map(|l| l.utilization).unwrap_or(0.0)
    }

    /// Loss rate at the primary bottleneck.
    pub fn bottleneck_loss(&self) -> f64 {
        self.links.first().map(|l| l.loss).unwrap_or(0.0)
    }
}

fn avg(iter: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = iter.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn progress(delivered: u64) -> FlowProgress {
        FlowProgress { delivered_bytes: delivered, ..Default::default() }
    }

    fn sample() -> Record {
        Record {
            name: "t".into(),
            defense: DefenseKind::NetFence,
            sim_time: 10 * SEC,
            seed: 1,
            senders: 4,
            fair_share_bps: 1000.0,
            roles: vec![
                RoleSeries {
                    group: "users".into(),
                    role: Role::User,
                    flows: vec![progress(1000), progress(3000)],
                    drops: DropBudget::default(),
                },
                RoleSeries {
                    group: "attackers".into(),
                    role: Role::Attacker,
                    flows: vec![progress(1000)],
                    drops: DropBudget::default(),
                },
            ],
            links: vec![LinkStats {
                label: "bottleneck".into(),
                capacity_bps: 4000,
                utilization: 0.5,
                loss: 0.1,
            }],
            report: DefenseReport::default(),
            samples: Vec::new(),
            attack_start: None,
            engine: EngineProfile::default(),
        }
    }

    /// Samples tracing: healthy baseline (1000 B/window), collapse after
    /// the attack at 4 s, recovery from 8 s on.
    fn sampled() -> Record {
        let user_bytes = [1000, 2000, 3000, 4000, 4100, 4200, 4300, 5300, 6300, 7300];
        let samples = user_bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| GoodputSample {
                at: (i as u64 + 1) * SEC,
                user_bytes: b,
                attacker_bytes: 0,
            })
            .collect();
        Record { samples, attack_start: Some(4 * SEC), ..sample() }
    }

    #[test]
    fn derived_metrics() {
        let r = sample();
        // 1000 bytes over 10 s = 800 bps; mean of 800 and 2400 = 1600.
        assert_eq!(r.avg_user_bps(), 1600.0);
        assert_eq!(r.avg_attacker_bps(), 800.0);
        assert_eq!(r.throughput_ratio(), 2.0);
        assert!(r.user_fairness() > 0.7 && r.user_fairness() < 1.0);
        assert_eq!(r.bottleneck_utilization(), 0.5);
        assert_eq!(r.bottleneck_loss(), 0.1);
        assert_eq!(r.group_avg_bps("users"), 1600.0);
        assert_eq!(r.group_avg_bps("missing"), 0.0);
    }

    #[test]
    fn completion_ratio_counts_failures() {
        let mut r = sample();
        r.roles[0].flows[0].completions.push((0, SEC, 100));
        r.roles[0].flows[1].failed_transfers = 1;
        assert_eq!(r.user_completion_ratio(), 0.5);
        // No attempts at all counts as complete.
        let empty = Record { roles: vec![], ..sample() };
        assert_eq!(empty.user_completion_ratio(), 1.0);
    }

    #[test]
    fn reaction_time_measures_recovery_after_collapse() {
        let r = sampled();
        // Baseline 1000 B/s; collapse to 100 B/s at 4 s; first sustained
        // ≥ 900 B window ends at 8 s → reaction 4 s.
        assert_eq!(r.reaction_secs(), Some(4.0));
    }

    #[test]
    fn reaction_time_needs_samples_attackers_and_recovery() {
        assert_eq!(sample().reaction_secs(), None, "no samples, no metric");
        let r = Record { attack_start: None, ..sampled() };
        assert_eq!(r.reaction_secs(), None, "no attack, no metric");
        let mut r = sampled();
        // Chop the trace right after the collapse: goodput never recovers.
        r.samples.truncate(7);
        assert_eq!(r.reaction_secs(), None, "no recovery, no metric");
    }

    #[test]
    fn reaction_time_ignores_transient_spikes() {
        let mut r = sampled();
        // One good window mid-collapse (5→6 s) followed by more collapse:
        // the spike alone must not count as recovery.
        let bytes = [1000, 2000, 3000, 4000, 4100, 5100, 5200, 5300, 6300, 7300];
        for (s, &b) in r.samples.iter_mut().zip(bytes.iter()) {
            s.user_bytes = b;
        }
        // True recovery only from 8 s on: first sustained window ends 9 s.
        assert_eq!(r.reaction_secs(), Some(5.0), "spike at 6 s must not count");
    }

    #[test]
    fn reaction_time_with_attack_at_time_zero_has_no_baseline() {
        // Attack from the very first instant: no pre-attack window exists,
        // so no baseline can be computed and the metric is undefined.
        let r = Record { attack_start: Some(0), ..sampled() };
        assert_eq!(r.reaction_secs(), None, "t=0 attack has no pre-attack baseline");
    }

    #[test]
    fn reaction_time_when_goodput_never_recovers_is_none() {
        // Collapse at 4 s that persists to the end of the run: every
        // post-attack window stays below 90% of the 1000 B baseline.
        let mut r = sampled();
        let bytes = [1000, 2000, 3000, 4000, 4100, 4200, 4300, 4400, 4500, 4600];
        for (s, &b) in r.samples.iter_mut().zip(bytes.iter()) {
            s.user_bytes = b;
        }
        assert_eq!(r.reaction_secs(), None, "never-recovering run must not report a reaction");
    }

    #[test]
    fn reaction_time_on_a_single_sample_run() {
        // One sample only. If the attack starts after that window, there is
        // no post-attack window to recover in; if it starts at 0, there is
        // no baseline. Either way the metric must be None, not a panic.
        let mut r = sampled();
        r.samples.truncate(1);
        r.attack_start = Some(2 * SEC);
        assert_eq!(r.reaction_secs(), None, "single pre-attack sample, nothing after");
        r.attack_start = Some(0);
        assert_eq!(r.reaction_secs(), None, "single sample with t=0 attack");
    }

    #[test]
    fn zero_attacker_ratio_is_infinite() {
        let mut r = sample();
        r.roles[1].flows.clear();
        assert!(r.throughput_ratio().is_infinite());
    }
}
