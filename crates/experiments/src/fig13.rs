//! Figures 13 and 14: the Appendix B multi-bottleneck designs.
//!
//! Figure 13 repeats the Figure 10 experiment with the Appendix B.1 design
//! (every packet carries the feedback of *all* on-path bottlenecks, so the
//! access router polices it with all the corresponding rate limiters);
//! Figure 14 repeats it with the Appendix B.2 design (single feedback plus a
//! per-destination-prefix rate-limiter inference cache).
//!
//! These two figures are reproduced with a control-loop (fluid) model built
//! directly on the `netfence-core` primitives — `AimdState`,
//! `MultiFeedback` policing semantics and `adjust_with_inference` — rather
//! than the packet simulator: the appendix designs change only the
//! access-router control loop, and the fluid model exposes exactly that
//! loop. `DESIGN.md` documents this substitution; Figure 10 (the core
//! design) is run in the full packet simulator for comparison.

use netfence_core::aimd::AimdState;
use netfence_core::config::Config;
use netfence_core::feedback::{Action, Feedback};
use netfence_core::multi::{adjust_with_inference, InferenceFlags};
use netfence_core::types::{LinkId, SEC};

use crate::fig10::CapacityCase;

/// Which multi-bottleneck handling the model runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiBottleneckDesign {
    /// The core design (§4.3.5): a packet carries feedback from only one
    /// bottleneck; idle limiters decay.
    SingleFeedback,
    /// Appendix B.1: multi-bottleneck feedback in one packet.
    MultiFeedback,
    /// Appendix B.2: rate-limiter inference at the access router.
    Inference,
}

/// One result row of Figure 13/14 (mirrors [`crate::fig10::Fig10Point`]).
#[derive(Debug, Clone)]
pub struct MultiBottleneckPoint {
    /// Which capacity configuration.
    pub case: CapacityCase,
    /// The design evaluated.
    pub design: MultiBottleneckDesign,
    /// Average Group-A legitimate-user throughput (bps).
    pub group_a_user_bps: f64,
    /// Average Group-A attacker throughput (bps).
    pub group_a_attacker_bps: f64,
    /// The Group-A max-min fair share (bps).
    pub fair_share_bps: f64,
}

/// One sender in the fluid model.
struct FluidSender {
    /// Rate limiters per on-path bottleneck, keyed by position (0 = L1,
    /// 1 = L2).
    limiters: Vec<AimdState>,
    /// Which links the sender crosses (subset of {0, 1}).
    crosses: Vec<usize>,
    /// How efficiently the sender uses its allowed rate (ν in the paper's
    /// analysis): ≈1 for UDP attackers, slightly lower for TCP users.
    efficiency: f64,
    /// Whether the sender is a legitimate user.
    is_user: bool,
}

impl FluidSender {
    /// The sending rate permitted by the currently relevant limiter(s).
    fn allowed(&self, design: MultiBottleneckDesign, carried: usize) -> f64 {
        match design {
            // Core design: only the limiter whose feedback the packets carry
            // polices the traffic.
            MultiBottleneckDesign::SingleFeedback => {
                let idx = self.crosses.iter().position(|&l| l == carried).unwrap_or(0);
                self.limiters[idx].rate() as f64
            }
            // B.1 / B.2: every on-path limiter polices the packet; the flow
            // is bounded by the smallest.
            _ => self.limiters.iter().map(|l| l.rate() as f64).fold(f64::MAX, f64::min),
        }
    }

    fn rate(&self, design: MultiBottleneckDesign, carried: usize) -> f64 {
        self.efficiency * self.allowed(design, carried)
    }
}

/// Run the fluid control-loop model for one capacity case and design.
///
/// `per_group` senders form each of the three groups (75% attackers). The
/// model iterates control intervals: it computes each link's offered load,
/// decides which links are congested, applies the feedback rules of the
/// chosen design, and lets every limiter run its AIMD adjustment.
pub fn run_fluid_case(
    case: CapacityCase,
    design: MultiBottleneckDesign,
    per_group: usize,
    intervals: usize,
) -> MultiBottleneckPoint {
    let cfg = Config::default();
    let legit = (per_group / 4).max(1);
    let mk_sender = |crosses: Vec<usize>, is_user: bool| FluidSender {
        limiters: crosses.iter().map(|_| AimdState::new(&cfg, 0)).collect(),
        crosses,
        efficiency: if is_user { 0.95 } else { 1.0 },
        is_user,
    };
    let mut senders: Vec<FluidSender> = Vec::new();
    for g in 0..3 {
        let crosses = match g {
            0 => vec![0, 1], // group A
            1 => vec![1],    // group B
            _ => vec![0],    // group C
        };
        for h in 0..per_group {
            senders.push(mk_sender(crosses.clone(), h < legit));
        }
    }
    let capacities: [f64; 2] = [case.l1_bps as f64, case.l2_bps as f64];

    // `carried[s]` is the bottleneck whose feedback sender s's packets carry
    // under the single-feedback design (the most upstream congested link,
    // per the §4.3.2 rules).
    let mut carried: Vec<usize> = senders.iter().map(|s| s.crosses[0]).collect();

    for step in 0..intervals {
        let now = (step as u64 + 1) * cfg.ilim;
        // Offered load per link.
        let mut load = [0.0f64; 2];
        for (s, sender) in senders.iter().enumerate() {
            let r = sender.rate(design, carried[s]);
            for &l in &sender.crosses {
                load[l] += r;
            }
        }
        let congested = [load[0] > capacities[0], load[1] > capacities[1]];

        // Feedback distribution + AIMD adjustment per sender.
        for (s, sender) in senders.iter_mut().enumerate() {
            let rate = sender.efficiency
                * sender.limiters.iter().map(|l| l.rate() as f64).fold(f64::MAX, f64::min);
            match design {
                MultiBottleneckDesign::SingleFeedback => {
                    // The most upstream congested on-path link stamps L↓ and
                    // owns the packet's feedback; otherwise the packets carry
                    // L↑ from the link they were last bound to.
                    let first_congested = sender.crosses.iter().copied().find(|&l| congested[l]);
                    let owner = first_congested.unwrap_or(carried[s]);
                    carried[s] = owner;
                    for (idx, &l) in sender.crosses.clone().iter().enumerate() {
                        let lim = &mut sender.limiters[idx];
                        if l == owner {
                            let fb = Feedback::Mon {
                                link: LinkId(l as u32 + 1),
                                action: if congested[l] { Action::Decr } else { Action::Incr },
                                ts: (now / SEC) as u32,
                                token: 0,
                                token_nop: None,
                            };
                            lim.observe(&fb);
                        }
                        // Limiters for other links see nothing and decay.
                        let tput = if l == owner { rate } else { 0.0 };
                        lim.adjust(now, tput, &cfg);
                    }
                }
                MultiBottleneckDesign::MultiFeedback => {
                    // Every on-path link contributes its own feedback.
                    for (idx, &l) in sender.crosses.clone().iter().enumerate() {
                        let lim = &mut sender.limiters[idx];
                        let fb = Feedback::Mon {
                            link: LinkId(l as u32 + 1),
                            action: if congested[l] { Action::Decr } else { Action::Incr },
                            ts: (now / SEC) as u32,
                            token: 0,
                            token_nop: None,
                        };
                        lim.observe(&fb);
                        lim.adjust(now, rate, &cfg);
                    }
                }
                MultiBottleneckDesign::Inference => {
                    // Single feedback (from the most upstream congested
                    // link), but the other limiters infer from it.
                    let first_congested = sender.crosses.iter().copied().find(|&l| congested[l]);
                    let owner = first_congested.unwrap_or(carried[s]);
                    carried[s] = owner;
                    for (idx, &l) in sender.crosses.clone().iter().enumerate() {
                        let lim = &mut sender.limiters[idx];
                        if l == owner {
                            let fb = Feedback::Mon {
                                link: LinkId(l as u32 + 1),
                                action: if congested[l] { Action::Decr } else { Action::Incr },
                                ts: (now / SEC) as u32,
                                token: 0,
                                token_nop: None,
                            };
                            lim.observe(&fb);
                            let flags = InferenceFlags { is_active: true, ..Default::default() };
                            adjust_with_inference(lim, flags, now, rate, &cfg);
                        } else {
                            // Inferred: L↑ elsewhere means this link was not
                            // congested either; L↓ elsewhere means hold.
                            let flags = if congested[owner] {
                                InferenceFlags { is_active_star: true, ..Default::default() }
                            } else {
                                InferenceFlags { has_incr_star: true, ..Default::default() }
                            };
                            adjust_with_inference(lim, flags, now, rate, &cfg);
                        }
                    }
                }
            }
        }
    }

    // Group A = the first `per_group` senders.
    let group_a = &senders[..per_group];
    let avg = |pred: &dyn Fn(&FluidSender) -> bool| {
        let v: Vec<f64> = group_a
            .iter()
            .enumerate()
            .filter(|(_, s)| pred(s))
            .map(|(i, s)| s.rate(design, carried[i]))
            .collect();
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<f64>() / v.len() as f64
        }
    };
    let crossing = 2 * per_group;
    MultiBottleneckPoint {
        case,
        design,
        group_a_user_bps: avg(&|s| s.is_user),
        group_a_attacker_bps: avg(&|s| !s.is_user),
        fair_share_bps: capacities[0].min(capacities[1]) / crossing as f64,
    }
}

/// Figure 13: the three capacity cases under the B.1 multi-feedback design.
pub fn run_fig13(per_group: usize, intervals: usize) -> Vec<MultiBottleneckPoint> {
    crate::fig10::capacity_cases(2 * per_group, 80_000)
        .into_iter()
        .map(|c| run_fluid_case(c, MultiBottleneckDesign::MultiFeedback, per_group, intervals))
        .collect()
}

/// Figure 14: the three capacity cases under the B.2 inference design.
pub fn run_fig14(per_group: usize, intervals: usize) -> Vec<MultiBottleneckPoint> {
    crate::fig10::capacity_cases(2 * per_group, 80_000)
        .into_iter()
        .map(|c| run_fluid_case(c, MultiBottleneckDesign::Inference, per_group, intervals))
        .collect()
}

/// The single-feedback fluid baseline (useful to compare against Figure 10's
/// packet-level results and in the ablation bench).
pub fn run_fig10_fluid(per_group: usize, intervals: usize) -> Vec<MultiBottleneckPoint> {
    crate::fig10::capacity_cases(2 * per_group, 80_000)
        .into_iter()
        .map(|c| run_fluid_case(c, MultiBottleneckDesign::SingleFeedback, per_group, intervals))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multifeedback_reaches_fair_share_in_all_cases() {
        for p in run_fig13(8, 400) {
            assert!(
                p.group_a_user_bps > 0.7 * p.fair_share_bps,
                "{}: user {} vs fair {}",
                p.case.label,
                p.group_a_user_bps,
                p.fair_share_bps
            );
            assert!(
                p.group_a_attacker_bps < 1.5 * p.fair_share_bps,
                "{}: attacker above fair share",
                p.case.label
            );
        }
    }

    #[test]
    fn inference_equalizes_users_and_attackers() {
        for p in run_fig14(8, 400) {
            let ratio = p.group_a_user_bps / p.group_a_attacker_bps.max(1.0);
            assert!((0.7..=1.3).contains(&ratio), "{}: user/attacker ratio {ratio}", p.case.label);
        }
    }

    #[test]
    fn single_feedback_underperforms_when_l1_smaller_than_l2() {
        let single = run_fig10_fluid(8, 400);
        let multi = run_fig13(8, 400);
        // The third case is 160M-240M (L1 < L2), where the core design hurts
        // Group A the most; B.1 recovers the fair share.
        let s = &single[2];
        let m = &multi[2];
        assert!(
            m.group_a_user_bps >= s.group_a_user_bps,
            "B.1 should not be worse than the core design: {} vs {}",
            m.group_a_user_bps,
            s.group_a_user_bps
        );
    }
}
