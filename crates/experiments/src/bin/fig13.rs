//! Figure 13: multi-bottleneck feedback in one packet (Appendix B.1).
use netfence_experiments::fig13::run_fig13;
use netfence_experiments::report::{kbps, render_table};

fn main() {
    println!("Figure 13: Appendix B.1 multi-bottleneck feedback (control-loop model, kbps)\n");
    let rows: Vec<Vec<String>> = run_fig13(16, 600)
        .iter()
        .map(|p| {
            vec![
                p.case.label.to_string(),
                kbps(p.group_a_user_bps),
                kbps(p.group_a_attacker_bps),
                kbps(p.fair_share_bps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["case", "Group-A user", "Group-A attacker", "fair share"], &rows)
    );
}
