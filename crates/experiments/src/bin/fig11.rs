//! Figure 11: microscopic on-off attacks.
use netfence_experiments::fig11::run_fig11;
use netfence_experiments::report::{kbps, render_table};
use netfence_experiments::Scale;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, toffs): (Scale, Vec<f64>) = if quick {
        (Scale { sim_time: 80 * 1_000_000_000, ..Scale::tiny() }, vec![1.5, 10.0])
    } else {
        (
            Scale { sim_time: 300 * 1_000_000_000, ..Scale::default_scale() },
            vec![1.5, 5.0, 10.0, 30.0, 100.0],
        )
    };
    println!(
        "Figure 11: synchronized on-off attacks, {} senders, fair share 100 kbps\n",
        scale.senders()
    );
    let rows: Vec<Vec<String>> = run_fig11(&scale, 100_000, &toffs)
        .iter()
        .map(|p| {
            vec![
                format!("{:.1}", p.ton as f64 / 1e9),
                format!("{:.1}", p.toff as f64 / 1e9),
                kbps(p.avg_user_bps),
            ]
        })
        .collect();
    println!("{}", render_table(&["Ton (s)", "Toff (s)", "user throughput (kbps)"], &rows));
}
