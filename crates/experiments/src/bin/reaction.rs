//! Reaction-time sweep: control-plane latency/loss/outage vs how fast each
//! defense restores legitimate goodput after the attack begins.
use netfence_experiments::reaction::{default_knobs, run_reaction_sweep, ATTACK_START, SYSTEMS};
use netfence_experiments::report::{kbps, render_table};
use netfence_experiments::Scale;
use netfence_sim::time::{MILLI, SEC};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    scale.sim_time = if quick { 40 * SEC } else { 90 * SEC };
    println!(
        "Reaction time: attack at {}s, {} senders per point, {}s simulated\n",
        ATTACK_START / SEC,
        scale.senders(),
        scale.sim_time / SEC
    );
    let points = run_reaction_sweep(&scale, &SYSTEMS, &default_knobs());
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}", p.knobs.latency / MILLI),
                format!("{:.1}%", p.knobs.loss_per_mille as f64 / 10.0),
                format!("{}", p.knobs.outage / SEC),
                p.system.label().to_string(),
                match p.reaction_secs {
                    Some(s) => format!("{s:.1}"),
                    None => "never".to_string(),
                },
                kbps(p.avg_user_bps),
                kbps(p.avg_attacker_bps),
                format!("{}", p.control_retransmits),
                format!("{}", p.control_lost),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "latency (ms)",
                "loss",
                "outage (s)",
                "system",
                "reaction (s)",
                "user kbps",
                "attacker kbps",
                "retx",
                "lost"
            ],
            &rows
        )
    );
}
