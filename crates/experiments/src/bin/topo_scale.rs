//! Topology-scaling sweep binary: host count vs build time, routing memory
//! and simulated packets per wall-clock second (NetFence vs no defense) on
//! generated transit-stub internets.
//!
//! Run with: `cargo run --release -p netfence-experiments --bin topo_scale`
//! (`--quick` shrinks to the test scale, `--full` extends the sweep to
//! 100 K-host builds and 16 K-host simulations).

use netfence_experiments::report::{kbps, render_table};
use netfence_experiments::topo_scale::{build_point, run_point};
use netfence_experiments::DefenseKind;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let full = std::env::args().any(|a| a == "--full");
    let (build_hosts, sim_hosts): (&[usize], &[usize]) = if quick {
        (&[500, 2_000], &[500])
    } else if full {
        (&[1_000, 5_000, 10_000, 20_000, 50_000, 100_000], &[1_000, 4_000, 16_000])
    } else {
        (&[1_000, 5_000, 10_000, 20_000, 50_000], &[1_000, 4_000])
    };

    println!(
        "Transit-stub build sweep (3×2 transit core, doubly-homed Zipf(0.9) stubs,\n\
         AS-aggregated routing: one BFS per host-bearing router, dense next-hop tables):\n"
    );
    let rows: Vec<Vec<String>> = build_hosts
        .iter()
        .map(|&h| {
            let p = build_point(h, 7);
            vec![
                p.hosts.to_string(),
                p.stubs.to_string(),
                p.nodes.to_string(),
                p.links.to_string(),
                format!("{}×{}", p.routers, p.destinations),
                format!("{:.1}", p.route_table_bytes as f64 / 1024.0),
                format!("{:.1}", p.build_secs * 1000.0),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &["hosts", "stubs", "nodes", "links", "routes", "route KiB", "build ms"],
            &rows
        )
    );

    println!(
        "Simulation sweep (5 s simulated unwanted flood, suppression off — the\n\
         NetFence-vs-None gap is the deployed data plane's overhead):\n"
    );
    let systems = [DefenseKind::NetFence, DefenseKind::None];
    let rows: Vec<Vec<String>> = sim_hosts
        .iter()
        .flat_map(|&h| {
            let p = run_point(h, 7, &systems);
            p.runs
                .into_iter()
                .map(|r| {
                    vec![
                        p.hosts.to_string(),
                        r.system.label().to_string(),
                        format!("{:.2}", r.wall_secs),
                        r.packets.to_string(),
                        format!("{:.0}", r.pkts_per_sec),
                        kbps(r.avg_user_bps),
                    ]
                })
                .collect::<Vec<_>>()
        })
        .collect();
    println!(
        "{}",
        render_table(&["hosts", "system", "wall s", "packets", "pkts/s", "user kbps"], &rows)
    );
}
