//! Chaos sweep: defense × fault kind × severity, with per-cell worst-case
//! recovery time and availability under the fault.
//!
//! `--quick` shrinks the grid to a dumbbell/mild smoke pass. `--trace`
//! runs one NetFence reboot cell with observer telemetry enabled instead
//! of the sweep: it prints the fault timeline marks and writes the
//! timeline probes (including the `fault` series) and sampled packet
//! flight records as JSONL under `target/telemetry/`.
use netfence_experiments::chaos::{
    chaos_spec, default_points, quick_points, run_chaos_sweep, ChaosFault, ChaosPoint,
    ChaosTopology, Severity, FAULT_AT, SYSTEMS,
};
use netfence_experiments::prelude::*;
use netfence_experiments::report::{kbps, pct, render_table};
use netfence_sim::time::SEC;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let mut scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    scale.sim_time = if quick { 25 * SEC } else { 60 * SEC };
    if trace {
        run_traced(&scale);
        return;
    }
    let points = if quick { quick_points() } else { default_points() };
    println!(
        "Chaos sweep: faults at {}s, {} cells, {} senders per cell, {}s simulated\n",
        FAULT_AT / SEC,
        points.len() * SYSTEMS.len(),
        scale.senders(),
        scale.sim_time / SEC
    );
    let outcomes = run_chaos_sweep(&scale, &SYSTEMS, &points);
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|o| {
            vec![
                o.point.topology.label().to_string(),
                o.point.fault.label().to_string(),
                o.point.severity.label().to_string(),
                o.system.label().to_string(),
                match o.worst_recovery_secs {
                    Some(s) => format!("{s:.1}"),
                    None => "-".to_string(),
                },
                match o.availability {
                    Some(a) => pct(a),
                    None => "-".to_string(),
                },
                kbps(o.avg_user_bps),
                kbps(o.avg_attacker_bps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "topology",
                "fault",
                "severity",
                "system",
                "worst recovery (s)",
                "availability",
                "user kbps",
                "attacker kbps"
            ],
            &rows
        )
    );
}

/// One telemetry-instrumented NetFence reboot cell.
fn run_traced(scale: &Scale) {
    let point = ChaosPoint {
        topology: ChaosTopology::Dumbbell,
        fault: ChaosFault::RouterReboot,
        severity: Severity::Mild,
    };
    let spec = chaos_spec(scale, DefenseKind::NetFence, &point).traced(TelemetryConfig::full(4));
    let (record, dump) = Runner::new(spec).run_with_telemetry();
    println!("Chaos (NetFence reboot cell, traced)\n");
    for (i, w) in record.faults.iter().enumerate() {
        println!(
            "fault {}: {} at {}s, cleared {}s, recovery {}",
            i,
            w.kind,
            w.at / SEC,
            w.clear_at / SEC,
            match record.fault_recovery_secs(i) {
                Some(s) => format!("{s:.1}s"),
                None => "never".to_string(),
            }
        );
    }
    println!(
        "worst recovery: {:?}s, availability: {:?}",
        record.worst_fault_recovery_secs(),
        record.availability()
    );
    let fault_rows =
        dump.timeline_jsonl.lines().filter(|l| l.contains("\"series\":\"fault\"")).count();
    println!(
        "timeline: {} rows ({} fault marks, {} evicted); trace: {} hop events ({} evicted)",
        dump.timeline_rows,
        fault_rows,
        dump.timeline_evicted,
        dump.trace_events,
        dump.trace_evicted
    );
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir).expect("create target/telemetry");
    let timeline_path = dir.join("chaos_timeline.jsonl");
    let trace_path = dir.join("chaos_trace.jsonl");
    std::fs::write(&timeline_path, &dump.timeline_jsonl).expect("write timeline jsonl");
    std::fs::write(&trace_path, &dump.trace_jsonl).expect("write trace jsonl");
    println!("wrote {} and {}", timeline_path.display(), trace_path.display());
}
