//! Figure 8: average 20 KB transfer time under unwanted-traffic floods.
use netfence_experiments::fig8::run_fig8;
use netfence_experiments::report::{pct, render_table, secs2};
use netfence_experiments::{DefenseKind, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    println!(
        "Figure 8: unwanted request flooding, {} simulated senders per point, {}s simulated\n",
        scale.senders(),
        scale.sim_time / 1_000_000_000
    );
    let points = run_fig8(&scale, &DefenseKind::ALL);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}K", p.represented_senders / 1000),
                p.system.label().to_string(),
                secs2(p.avg_transfer_secs),
                pct(p.completion_ratio),
            ]
        })
        .collect();
    println!("{}", render_table(&["senders", "system", "avg transfer (s)", "completed"], &rows));
}
