//! Figure 8: average 20 KB transfer time under unwanted-traffic floods.
//!
//! `--trace` runs one NetFence cell with observer telemetry enabled
//! instead of the sweep: it prints the typed drop-budget table and writes
//! the timeline probes and sampled packet flight records as JSONL under
//! `target/telemetry/`.
use netfence_experiments::fig8::{fig8_spec, run_fig8};
use netfence_experiments::prelude::*;
use netfence_experiments::report::{drop_budget_table, pct, render_table, secs2};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let trace = std::env::args().any(|a| a == "--trace");
    let scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    if trace {
        run_traced(&scale);
        return;
    }
    println!(
        "Figure 8: unwanted request flooding, {} simulated senders per point, {}s simulated\n",
        scale.senders(),
        scale.sim_time / 1_000_000_000
    );
    let points = run_fig8(&scale, &DefenseKind::ALL);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{}K", p.represented_senders / 1000),
                p.system.label().to_string(),
                secs2(p.avg_transfer_secs),
                pct(p.completion_ratio),
            ]
        })
        .collect();
    println!("{}", render_table(&["senders", "system", "avg transfer (s)", "completed"], &rows));
}

/// One telemetry-instrumented NetFence cell of the Figure 8 sweep.
fn run_traced(scale: &Scale) {
    use netfence_sim::prelude::MILLI;
    let spec = fig8_spec(scale, DefenseKind::NetFence, 100_000)
        .sampled(500 * MILLI)
        .traced(TelemetryConfig::full(4));
    let (record, dump) = Runner::new(spec).run_with_telemetry();
    println!("Figure 8 (NetFence cell, traced): drop budget\n");
    println!("{}", drop_budget_table(&record));
    println!(
        "engine: {} events, {} forwards, {} enqueues, {} dequeues, {} drops",
        record.engine.events,
        record.engine.forwards,
        record.engine.enqueues,
        record.engine.dequeues,
        record.engine.drops
    );
    println!(
        "timeline: {} rows ({} evicted); trace: {} hop events ({} evicted)",
        dump.timeline_rows, dump.timeline_evicted, dump.trace_events, dump.trace_evicted
    );
    let dir = std::path::Path::new("target/telemetry");
    std::fs::create_dir_all(dir).expect("create target/telemetry");
    let timeline_path = dir.join("fig8_timeline.jsonl");
    let trace_path = dir.join("fig8_trace.jsonl");
    std::fs::write(&timeline_path, &dump.timeline_jsonl).expect("write timeline jsonl");
    std::fs::write(&trace_path, &dump.trace_jsonl).expect("write trace jsonl");
    println!("wrote {} and {}", timeline_path.display(), trace_path.display());
}
