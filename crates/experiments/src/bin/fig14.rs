//! Figure 14: rate-limiter inference (Appendix B.2).
use netfence_experiments::fig13::run_fig14;
use netfence_experiments::report::{kbps, render_table};

fn main() {
    println!("Figure 14: Appendix B.2 rate-limiter inference (control-loop model, kbps)\n");
    let rows: Vec<Vec<String>> = run_fig14(16, 600)
        .iter()
        .map(|p| {
            vec![
                p.case.label.to_string(),
                kbps(p.group_a_user_bps),
                kbps(p.group_a_attacker_bps),
                kbps(p.fair_share_bps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["case", "Group-A user", "Group-A attacker", "fair share"], &rows)
    );
}
