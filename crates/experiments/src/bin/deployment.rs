//! Incremental-deployment sweep binary: deploying-source-AS fraction vs
//! legitimate goodput for every defense system.
//!
//! Run with: `cargo run --release -p netfence-experiments --bin deployment`
//! (`--quick` shrinks to the test scale).

use netfence_experiments::deployment::{run_deployment_sweep, COVERAGES};
use netfence_experiments::report::{kbps, render_table};
use netfence_experiments::{DefenseKind, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    println!(
        "Incremental deployment sweep: {} source ASes × {} hosts, 1 Mbps unwanted floods on the\n\
         victim, users fetching 20 KB pages; coverage = fraction of source ASes deploying\n\
         (core + destination always deploy when > 0).\n",
        scale.src_ases, scale.hosts_per_as
    );
    let points = run_deployment_sweep(&scale, &DefenseKind::EVERY, &COVERAGES);
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                format!("{:.0}%", p.coverage * 100.0),
                p.system.label().to_string(),
                format!("{}/{}", p.deployed_ases, p.total_ases),
                kbps(p.avg_user_bps),
                kbps(p.avg_attacker_bps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["coverage", "system", "deployed ASes", "user kbps", "attacker kbps"], &rows)
    );
    println!(
        "Shape to expect: user goodput non-decreasing in coverage for NetFence\n\
         (deployed routers demote legacy floods; each adopting AS protects its own users)."
    );
}
