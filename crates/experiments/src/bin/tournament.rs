//! Adversarial tournament: defense × strategy × topology × coverage grid,
//! printed as the full cell table plus the per-defense regret matrix.
use netfence_experiments::report::{kbps, render_table};
use netfence_experiments::tournament::{
    default_points, regret_matrix, run_tournament, ATTACK_START, SYSTEMS,
};
use netfence_experiments::Scale;
use netfence_sim::time::SEC;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    scale.sim_time = if quick { 20 * SEC } else { 60 * SEC };
    let points = default_points();
    println!(
        "Tournament: {} defenses x {} strategy points, attack at {}s, {}s simulated\n",
        SYSTEMS.len(),
        points.len(),
        ATTACK_START / SEC,
        scale.sim_time / SEC
    );
    let cells = run_tournament(&scale, &SYSTEMS, &points);
    let rows: Vec<Vec<String>> = cells
        .iter()
        .map(|c| {
            vec![
                c.system.label().to_string(),
                c.point.strategy.label().to_string(),
                c.point.topology.label().to_string(),
                format!("{}%", c.point.coverage_pct),
                kbps(c.avg_user_bps),
                kbps(c.avg_attacker_bps),
                match c.reaction_secs {
                    Some(s) => format!("{s:.1}"),
                    None => "never".to_string(),
                },
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "system",
                "strategy",
                "topology",
                "coverage",
                "user kbps",
                "attacker kbps",
                "reaction (s)"
            ],
            &rows
        )
    );
    println!("Worst case per defense (regret vs the minimax winner):\n");
    let matrix = regret_matrix(&cells);
    let rows: Vec<Vec<String>> = matrix
        .iter()
        .map(|r| {
            vec![
                r.system.label().to_string(),
                kbps(r.worst_user_bps),
                r.worst_strategy.to_string(),
                r.worst_topology.to_string(),
                match r.worst_reaction_secs {
                    Some(s) => format!("{s:.1}"),
                    None => "never".to_string(),
                },
                kbps(r.regret_bps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "system",
                "worst user kbps",
                "worst strategy",
                "on",
                "worst reaction (s)",
                "regret kbps"
            ],
            &rows
        )
    );
}
