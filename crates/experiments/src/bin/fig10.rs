//! Figure 10: NetFence on a parking-lot topology with two bottlenecks.
use netfence_experiments::fig10::run_fig10;
use netfence_experiments::report::{kbps, render_table};
use netfence_experiments::Scale;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    if quick {
        scale.sim_time = 80 * 1_000_000_000;
    }
    println!("Figure 10: Group-A throughput on the parking-lot topology (kbps)\n");
    let rows: Vec<Vec<String>> = run_fig10(&scale)
        .iter()
        .map(|p| {
            vec![
                p.case.label.to_string(),
                kbps(p.group_a_user_bps),
                kbps(p.group_a_attacker_bps),
                kbps(p.fair_share_bps),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(&["case", "Group-A user", "Group-A attacker", "fair share"], &rows)
    );
}
