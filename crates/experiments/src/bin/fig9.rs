//! Figure 9: throughput ratio under colluding floods.
use netfence_experiments::fig9::{run_fig9, UserTraffic};
use netfence_experiments::report::{pct, render_table};
use netfence_experiments::{DefenseKind, Scale};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick { Scale::tiny() } else { Scale::default_scale() };
    for (traffic, title) in [
        (UserTraffic::LongRunning, "(a) long-running TCP"),
        (UserTraffic::WebLike, "(b) web-like traffic"),
    ] {
        println!(
            "Figure 9{title}: colluding regular-packet floods, {} simulated senders per point\n",
            scale.senders()
        );
        let points = run_fig9(&scale, &DefenseKind::ALL, traffic);
        let rows: Vec<Vec<String>> = points
            .iter()
            .map(|p| {
                vec![
                    format!("{}K", p.represented_senders / 1000),
                    p.system.label().to_string(),
                    format!("{:.2}", p.throughput_ratio),
                    format!("{:.3}", p.fairness_index),
                    pct(p.utilization),
                ]
            })
            .collect();
        println!(
            "{}",
            render_table(&["senders", "system", "tput ratio", "fairness", "utilization"], &rows)
        );
    }
}
