//! Figure 7: router micro-benchmarks (ns per packet).
use netfence_experiments::fig7::run_fig7;
use netfence_experiments::report::render_table;

fn main() {
    let iters: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(200_000);
    let rows = run_fig7(iters);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.packet_type.to_string(),
                r.router_type.to_string(),
                r.condition.to_string(),
                format!("{:.0}", r.netfence_ns),
                format!("{:.0}", r.tva_ns),
            ]
        })
        .collect();
    println!("Figure 7: per-packet processing overhead (ns/pkt), {iters} packets per cell\n");
    println!("{}", render_table(&["packet", "router", "condition", "NetFence", "TVA+"], &table));
    println!("Note: software AES on this host; the paper used a 3 GHz Xeon with the same relative structure.");
}
