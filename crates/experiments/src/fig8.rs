//! Figure 8: unwanted-traffic (request) flooding attacks.
//!
//! Attackers flood the victim, the victim identifies the attack traffic and
//! uses each system's mechanism to block it (capabilities, secure congestion
//! policing feedback, filters). Legitimate users repeatedly transfer a 20 KB
//! file to the victim; the metric is the average time of a successful
//! transfer and the completion ratio, as the number of (represented)
//! senders grows from 25 K to 200 K.

use netfence_sim::prelude::*;

use crate::scenario::{
    build_dumbbell, collect_outcome, make_defense, DefenseKind, Scale,
};

/// One point of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Number of senders this run represents (25 K – 200 K in the paper).
    pub represented_senders: u64,
    /// Per-sender fair share of the bottleneck in bits per second.
    pub fair_share_bps: u64,
    /// The defense system.
    pub system: DefenseKind,
    /// Average successful 20 KB transfer time, seconds.
    pub avg_transfer_secs: f64,
    /// Fraction of attempted transfers that completed.
    pub completion_ratio: f64,
}

/// The (represented senders, per-sender fair share) sweep of Figure 8: a
/// fixed 10 Gbps link shared by 25 K–200 K senders.
pub const FIG8_SWEEP: [(u64, u64); 4] =
    [(25_000, 400_000), (50_000, 200_000), (100_000, 100_000), (200_000, 50_000)];

/// Run one (system, sweep point) cell and return its Figure 8 point.
pub fn run_fig8_cell(scale: &Scale, system: DefenseKind, represented: u64, fair_share: u64) -> Fig8Point {
    let bottleneck_bps = fair_share * scale.senders() as u64;
    let d = build_dumbbell(scale, 1, bottleneck_bps, 0);
    let defense = make_defense(system, &d, true);
    let mut sim = Simulator::new(
        // Rebuilding the network is cheap; the Dumbbell keeps only metadata.
        build_dumbbell(scale, 1, bottleneck_bps, 0).net,
        defense,
        SimConfig { end_time: scale.sim_time, seed: scale.seed, ..Default::default() },
    );
    let mut user_flows = Vec::new();
    let mut attacker_flows = Vec::new();
    for (i, &u) in d.users.iter().enumerate() {
        let victim = d.victim;
        let seed = scale.seed ^ (i as u64 + 1);
        user_flows.push(sim.add_flow((i as u64 % 10) * 100 * MILLI, |id| {
            Box::new(TcpFlow::new(
                id,
                u,
                victim,
                // A 5 s gap keeps each transfer outside the 4 s feedback /
                // capability lifetime so that every transfer pays the full
                // connection-setup cost, as in the paper's experiment.
                TcpWorkload::RepeatedFile { bytes: 20_000, gap: 5 * SEC },
                TcpConfig::default(),
                SimRng::new(seed),
            ))
        }));
    }
    for (i, &a) in d.attackers.iter().enumerate() {
        let victim = d.victim;
        attacker_flows.push(sim.add_flow((i as u64 % 100) * MILLI, |id| {
            Box::new(UdpFlow::cbr(id, a, victim, 1_000_000))
        }));
    }
    sim.run();
    let outcome = collect_outcome(&sim, &user_flows, &attacker_flows, d.bottleneck, bottleneck_bps);
    Fig8Point {
        represented_senders: represented,
        fair_share_bps: fair_share,
        system,
        avg_transfer_secs: outcome.avg_user_transfer_secs().unwrap_or(f64::NAN),
        completion_ratio: outcome.user_completion_ratio(),
    }
}

/// Run the full Figure 8 sweep for the given systems.
pub fn run_fig8(scale: &Scale, systems: &[DefenseKind]) -> Vec<Fig8Point> {
    let mut points = Vec::new();
    for &(represented, fair_share) in &FIG8_SWEEP {
        for &system in systems {
            points.push(run_fig8_cell(scale, system, represented, fair_share));
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfence_completes_transfers_under_request_flood() {
        let scale = Scale::tiny();
        let p = run_fig8_cell(&scale, DefenseKind::NetFence, 100_000, 100_000);
        assert!(p.completion_ratio > 0.8, "completion ratio {}", p.completion_ratio);
        assert!(p.avg_transfer_secs < 10.0, "avg transfer {}", p.avg_transfer_secs);
    }

    #[test]
    fn stopit_filters_make_transfers_fast() {
        let scale = Scale::tiny();
        let p = run_fig8_cell(&scale, DefenseKind::StopIt, 100_000, 100_000);
        assert!(p.completion_ratio > 0.9);
        assert!(p.avg_transfer_secs < 3.0, "avg transfer {}", p.avg_transfer_secs);
    }
}
