//! Figure 8: unwanted-traffic (request) flooding attacks.
//!
//! Attackers flood the victim, the victim identifies the attack traffic and
//! uses each system's mechanism to block it (capabilities, secure congestion
//! policing feedback, filters). Legitimate users repeatedly transfer a 20 KB
//! file to the victim; the metric is the average time of a successful
//! transfer and the completion ratio, as the number of (represented)
//! senders grows from 25 K to 200 K.

use netfence_sim::prelude::*;

use crate::prelude::*;

/// One point of Figure 8.
#[derive(Debug, Clone)]
pub struct Fig8Point {
    /// Number of senders this run represents (25 K – 200 K in the paper).
    pub represented_senders: u64,
    /// Per-sender fair share of the bottleneck in bits per second.
    pub fair_share_bps: u64,
    /// The defense system.
    pub system: DefenseKind,
    /// Average successful 20 KB transfer time, seconds.
    pub avg_transfer_secs: f64,
    /// Fraction of attempted transfers that completed.
    pub completion_ratio: f64,
}

/// The (represented senders, per-sender fair share) sweep of Figure 8: a
/// fixed 10 Gbps link shared by 25 K–200 K senders.
pub const FIG8_SWEEP: [(u64, u64); 4] =
    [(25_000, 400_000), (50_000, 200_000), (100_000, 100_000), (200_000, 50_000)];

/// The Figure 8 scenario: one legitimate user per AS repeatedly fetching a
/// 20 KB file from the victim, everyone else flooding it with 1 Mbps CBR.
pub fn fig8_spec(scale: &Scale, system: DefenseKind, fair_share: u64) -> ScenarioSpec {
    ScenarioSpec::dumbbell(*scale)
        .named("fig8-unwanted-flood")
        .defense(system)
        .fair_share(fair_share)
        .legit_per_as(1)
        // A 5 s gap keeps each transfer outside the 4 s feedback /
        // capability lifetime so that every transfer pays the full
        // connection-setup cost, as in the paper's experiment.
        .users(TrafficSpec::repeated_file(20_000, 5 * SEC))
        .user_start(StartSchedule::staggered(10, 100 * MILLI))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim)
        .attacker_start(StartSchedule::staggered(100, MILLI))
}

fn to_point(represented: u64, fair_share: u64, system: DefenseKind, r: &Record) -> Fig8Point {
    Fig8Point {
        represented_senders: represented,
        fair_share_bps: fair_share,
        system,
        avg_transfer_secs: r.avg_user_transfer_secs().unwrap_or(f64::NAN),
        completion_ratio: r.user_completion_ratio(),
    }
}

/// Run one (system, sweep point) cell and return its Figure 8 point.
pub fn run_fig8_cell(
    scale: &Scale,
    system: DefenseKind,
    represented: u64,
    fair_share: u64,
) -> Fig8Point {
    let r = Runner::new(fig8_spec(scale, system, fair_share)).run();
    to_point(represented, fair_share, system, &r)
}

/// Run the full Figure 8 sweep for the given systems (cells in parallel).
pub fn run_fig8(scale: &Scale, systems: &[DefenseKind]) -> Vec<Fig8Point> {
    SweepGrid::new(systems.to_vec(), FIG8_SWEEP.to_vec())
        .run_auto(|system, &(_, fair_share)| fig8_spec(scale, system, fair_share))
        .iter()
        .map(|c| to_point(c.point.0, c.point.1, c.system, &c.record))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netfence_completes_transfers_under_request_flood() {
        let scale = Scale::tiny();
        let p = run_fig8_cell(&scale, DefenseKind::NetFence, 100_000, 100_000);
        assert!(p.completion_ratio > 0.8, "completion ratio {}", p.completion_ratio);
        assert!(p.avg_transfer_secs < 10.0, "avg transfer {}", p.avg_transfer_secs);
    }

    #[test]
    fn stopit_filters_make_transfers_fast() {
        let scale = Scale::tiny();
        let p = run_fig8_cell(&scale, DefenseKind::StopIt, 100_000, 100_000);
        assert!(p.completion_ratio > 0.9);
        assert!(p.avg_transfer_secs < 3.0, "avg transfer {}", p.avg_transfer_secs);
    }
}
