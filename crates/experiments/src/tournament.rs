//! The adversarial tournament: every defense against every attacker
//! strategy, across topologies and deployment coverage, scored by each
//! defense's **worst case**.
//!
//! A defense that looks strong against the fixed flood of §6.3 may crumble
//! against a shrew tuned to its AIMD period or a probe that finds its worst
//! case; robustness is a *minimax* property. The tournament runs the
//! (defense × strategy × topology × coverage) grid via
//! [`SweepGrid`] — attackers are the adaptive agents of
//! `netfence-adversary`, victims always defend themselves, users are
//! demand-bounded so a clean baseline exists — and folds the cells into a
//! regret-style matrix: per defense, the minimum legitimate-user goodput
//! over all strategies, the strategy that achieved it, the slowest measured
//! reaction, and the *regret* against the best defense's worst case. The
//! bench records both the per-cell values and the matrix into
//! `BENCH_results.json`.

use netfence_adversary::AttackStrategy;
use netfence_sim::prelude::*;

use crate::prelude::*;

/// When every attacker opens fire (users establish their baseline first).
pub const ATTACK_START: Nanos = 5 * SEC;

/// Per-attacker nominal rate, bits per second.
pub const ATTACK_RATE: u64 = 1_000_000;

/// The defenses the tournament compares (the paper's four systems).
pub const SYSTEMS: [DefenseKind; 4] = DefenseKind::ALL;

/// Which topology a tournament point runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologyKind {
    /// The classic single-bottleneck dumbbell.
    Dumbbell,
    /// The multi-bottleneck mesh (3 chained + 1 branching designated
    /// links) — the arena where rolling attacks shift across bottlenecks.
    Mesh,
}

impl TopologyKind {
    /// Short display name.
    pub fn label(&self) -> &'static str {
        match self {
            TopologyKind::Dumbbell => "dumbbell",
            TopologyKind::Mesh => "mesh",
        }
    }
}

/// One strategy-side point of the grid (the defense axis comes from
/// [`SweepGrid`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TournamentPoint {
    /// The attacker strategy.
    pub strategy: AttackStrategy,
    /// The arena.
    pub topology: TopologyKind,
    /// Deployment coverage of the defense over source ASes, percent.
    pub coverage_pct: u8,
}

/// The default grid: the canonical strategy lineup × both topologies ×
/// full and half deployment.
pub fn default_points() -> Vec<TournamentPoint> {
    let mut points = Vec::new();
    for topology in [TopologyKind::Dumbbell, TopologyKind::Mesh] {
        for coverage_pct in [100u8, 50] {
            for strategy in AttackStrategy::lineup(ATTACK_RATE) {
                points.push(TournamentPoint { strategy, topology, coverage_pct });
            }
        }
    }
    points
}

/// The scenario of one tournament cell.
///
/// Attackers pair with colluding receivers (so strategies that *choose* to
/// flood the victim face suppression while colluder floods bypass it —
/// exactly the choice [`AttackStrategy::Probe`] explores), the victim
/// always defends itself ([`Suppression::On`]), users are demand-bounded
/// 50 kbps CBR under a 100 kbps per-sender fair share, and goodput is
/// sampled every second for the reaction metric.
pub fn tournament_spec(scale: &Scale, system: DefenseKind, p: &TournamentPoint) -> ScenarioSpec {
    let base = match p.topology {
        TopologyKind::Dumbbell => ScenarioSpec::dumbbell(*scale).fair_share(100_000),
        TopologyKind::Mesh => {
            // 3 chained + 1 branching links; each link carries the long
            // group plus one local group, so provision 100 kbps per
            // competing sender.
            let per_group = scale.hosts_per_as.max(4);
            let bps = 100_000 * 2 * per_group as u64;
            ScenarioSpec::multi_bottleneck(*scale, 3, 1, bps)
        }
    };
    base.named("tournament")
        .defense_spec(DefenseSpec::new(system).with_suppression(Suppression::On))
        .coverage(p.coverage_pct as f64 / 100.0)
        .legit_per_as(1)
        .users(TrafficSpec::cbr(50_000))
        .user_start(StartSchedule::staggered(10, 100 * MILLI))
        .attackers(TrafficSpec::cbr(ATTACK_RATE), AttackTarget::Colluders { ases: 1 })
        .attacker_start(StartSchedule::delayed(ATTACK_START))
        .adversary(p.strategy)
        .sampled(SEC)
}

/// One executed cell of the tournament grid.
#[derive(Debug, Clone)]
pub struct TournamentCell {
    /// The defense.
    pub system: DefenseKind,
    /// The strategy-side point.
    pub point: TournamentPoint,
    /// Average legitimate-user goodput over the run, bits per second.
    pub avg_user_bps: f64,
    /// Average attacker goodput over the run, bits per second.
    pub avg_attacker_bps: f64,
    /// Attack start → sustained 90% goodput recovery, seconds (`None` =
    /// never recovered within the run).
    pub reaction_secs: Option<f64>,
}

/// One row of the regret matrix: a defense's worst case over every
/// strategy it faced.
#[derive(Debug, Clone)]
pub struct RegretRow {
    /// The defense.
    pub system: DefenseKind,
    /// Its minimum user goodput across all cells — the worst case.
    pub worst_user_bps: f64,
    /// The strategy that achieved the worst case.
    pub worst_strategy: &'static str,
    /// The topology the worst case occurred on.
    pub worst_topology: &'static str,
    /// The slowest reaction across the defense's cells; `None` when any
    /// cell never recovered (the worst possible reaction).
    pub worst_reaction_secs: Option<f64>,
    /// How far this defense's worst case falls short of the best
    /// defense's worst case, bits per second (0 for the minimax winner).
    pub regret_bps: f64,
}

/// Run the full grid (cells in parallel, deterministic point-major order).
pub fn run_tournament(
    scale: &Scale,
    systems: &[DefenseKind],
    points: &[TournamentPoint],
) -> Vec<TournamentCell> {
    SweepGrid::new(systems.to_vec(), points.to_vec())
        .run_auto(|system, p| tournament_spec(scale, system, p))
        .iter()
        .map(|c| TournamentCell {
            system: c.system,
            point: c.point,
            avg_user_bps: c.record.avg_user_bps(),
            avg_attacker_bps: c.record.avg_attacker_bps(),
            reaction_secs: c.record.reaction_secs(),
        })
        .collect()
}

/// Fold executed cells into the per-defense worst-case (regret) matrix.
/// Rows come back in first-appearance order of the systems.
pub fn regret_matrix(cells: &[TournamentCell]) -> Vec<RegretRow> {
    let mut rows: Vec<RegretRow> = Vec::new();
    for cell in cells {
        match rows.iter_mut().find(|r| r.system == cell.system) {
            None => rows.push(RegretRow {
                system: cell.system,
                worst_user_bps: cell.avg_user_bps,
                worst_strategy: cell.point.strategy.label(),
                worst_topology: cell.point.topology.label(),
                worst_reaction_secs: cell.reaction_secs,
                regret_bps: 0.0,
            }),
            Some(row) => {
                if cell.avg_user_bps < row.worst_user_bps {
                    row.worst_user_bps = cell.avg_user_bps;
                    row.worst_strategy = cell.point.strategy.label();
                    row.worst_topology = cell.point.topology.label();
                }
                // The slowest reaction is the worst; never-recovered
                // (`None`) dominates every finite reaction.
                row.worst_reaction_secs = match (row.worst_reaction_secs, cell.reaction_secs) {
                    (Some(a), Some(b)) => Some(a.max(b)),
                    _ => None,
                };
            }
        }
    }
    let best = rows.iter().map(|r| r.worst_user_bps).fold(0.0f64, f64::max);
    for row in &mut rows {
        row.regret_bps = best - row.worst_user_bps;
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { src_ases: 2, hosts_per_as: 3, sim_time: 12 * SEC, seed: 7 }
    }

    /// The CI gate the issue asks for: *every* strategy must run against
    /// *every* defense (including `None`) without panicking, on both
    /// arenas.
    #[test]
    fn no_strategy_panics_on_any_defense() {
        for topology in [TopologyKind::Dumbbell, TopologyKind::Mesh] {
            for strategy in AttackStrategy::lineup(ATTACK_RATE) {
                for system in DefenseKind::EVERY {
                    let p = TournamentPoint { strategy, topology, coverage_pct: 100 };
                    let r = Runner::new(tournament_spec(&tiny(), system, &p)).run();
                    assert!(
                        r.senders > 0,
                        "{} vs {} produced no senders",
                        system.label(),
                        p.strategy.label()
                    );
                }
            }
        }
    }

    #[test]
    fn grid_cells_carry_reaction_and_goodput() {
        let points = [TournamentPoint {
            strategy: AttackStrategy::static_cbr(ATTACK_RATE),
            topology: TopologyKind::Dumbbell,
            coverage_pct: 100,
        }];
        let cells = run_tournament(&tiny(), &[DefenseKind::Fq, DefenseKind::None], &points);
        assert_eq!(cells.len(), 2);
        assert!(cells.iter().all(|c| c.avg_user_bps >= 0.0));
    }

    #[test]
    fn regret_matrix_scores_the_minimax_winner_zero() {
        let p = |s: AttackStrategy| TournamentPoint {
            strategy: s,
            topology: TopologyKind::Dumbbell,
            coverage_pct: 100,
        };
        let cells = vec![
            TournamentCell {
                system: DefenseKind::NetFence,
                point: p(AttackStrategy::static_cbr(1)),
                avg_user_bps: 90_000.0,
                avg_attacker_bps: 0.0,
                reaction_secs: Some(2.0),
            },
            TournamentCell {
                system: DefenseKind::NetFence,
                point: p(AttackStrategy::shrew_tuned(1)),
                avg_user_bps: 70_000.0,
                avg_attacker_bps: 0.0,
                reaction_secs: Some(5.0),
            },
            TournamentCell {
                system: DefenseKind::Fq,
                point: p(AttackStrategy::static_cbr(1)),
                avg_user_bps: 50_000.0,
                avg_attacker_bps: 0.0,
                reaction_secs: None,
            },
            TournamentCell {
                system: DefenseKind::Fq,
                point: p(AttackStrategy::shrew_tuned(1)),
                avg_user_bps: 60_000.0,
                avg_attacker_bps: 0.0,
                reaction_secs: Some(1.0),
            },
        ];
        let matrix = regret_matrix(&cells);
        assert_eq!(matrix.len(), 2);
        let nf = &matrix[0];
        assert_eq!(nf.system, DefenseKind::NetFence);
        assert_eq!(nf.worst_user_bps, 70_000.0);
        assert_eq!(nf.worst_strategy, "shrew");
        assert_eq!(nf.worst_reaction_secs, Some(5.0));
        assert_eq!(nf.regret_bps, 0.0, "minimax winner has zero regret");
        let fq = &matrix[1];
        assert_eq!(fq.worst_user_bps, 50_000.0);
        assert_eq!(fq.worst_reaction_secs, None, "never-recovered dominates");
        assert_eq!(fq.regret_bps, 20_000.0);
    }

    #[test]
    fn default_grid_covers_all_axes() {
        let points = default_points();
        // 5 strategies × 2 topologies × 2 coverages.
        assert_eq!(points.len(), 20);
        assert!(points.iter().any(|p| p.topology == TopologyKind::Mesh && p.coverage_pct == 50));
    }
}
