//! Evaluation topology builders — thin wrappers over the `netfence-topo`
//! crate (§6.3 of the paper).
//!
//! The actual builders (classic dumbbell/parking lot, generated
//! transit-stub and multi-bottleneck families) live in [`netfence_topo`];
//! this module keeps the historical `experiments::topo` names working and
//! adapts the experiment [`Scale`] vocabulary to the crate's explicit
//! parameters. Each builder constructs its [`Network`](netfence_sim::topology::Network)
//! **exactly once** and returns it alongside the role metadata; the
//! [`Runner`](crate::runner::Runner) moves the network into the simulator
//! and keeps the metadata — no rebuild.

pub use netfence_topo::classic::{src_host_addr, Dumbbell, Group, ParkingLot};
pub use netfence_topo::{Bottleneck, BuiltTopo, TopoGroup, TopoSpec};

use crate::spec::Scale;

/// Build the dumbbell. `legit_per_as` of each AS's hosts are legitimate
/// users, the rest are attackers. `colluder_ases` extra destination ASes
/// are attached behind the bottleneck.
pub fn build_dumbbell(
    scale: &Scale,
    legit_per_as: usize,
    bottleneck_bps: u64,
    colluder_ases: usize,
) -> Dumbbell {
    netfence_topo::classic::build_dumbbell(
        scale.src_ases,
        scale.hosts_per_as,
        legit_per_as,
        bottleneck_bps,
        colluder_ases,
    )
}

/// Build the parking-lot topology: `R0 —L1→ R1 —L2→ R2` with the paper's
/// crossing pattern (group A crosses both links, B only L2, C only L1).
pub fn build_parking_lot(
    per_group: usize,
    legit_per_group: usize,
    l1_bps: u64,
    l2_bps: u64,
) -> ParkingLot {
    netfence_topo::classic::build_parking_lot(per_group, legit_per_group, l1_bps, l2_bps)
}
