//! The defense-reaction-time sweep: control-plane quality vs how fast a
//! defense restores legitimate goodput.
//!
//! AITF-style analyses ask how long a closed-loop defense needs between
//! the attack's onset and the victim's recovery; the answer is dominated
//! by the control plane carrying the defense's messages — filter
//! requests (StopIt), key announcements (NetFence/Passport) — not by the
//! data path. This sweep measures that directly: on the internet-scale
//! transit-stub topology, demand-bounded users establish a goodput
//! baseline, all attackers open fire at a fixed instant with the attack
//! that engages each defense's control loop ([`attack_for`])
//! ([`ATTACK_START`]), and the record's sampled goodput series yields
//! [`Record::reaction_secs`] — attack start to the first sustained return
//! to ≥ 90% of the baseline — per (defense × control-plane
//! configuration) cell. Fair queuing needs no control messages at all, so
//! its flat curve calibrates what portion of the reaction is pure data
//! path.

use netfence_ctrl::prelude::*;
use netfence_sim::prelude::*;

use crate::prelude::*;

/// When every attacker starts sending (users start in the first second, so
/// a clean pre-attack baseline exists).
pub const ATTACK_START: Nanos = 8 * SEC;

/// One control-plane quality setting of the sweep (one grid point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ReactionKnobs {
    /// Base one-way control-message latency.
    pub latency: Nanos,
    /// Per-transmission loss probability, in per-mille.
    pub loss_per_mille: u64,
    /// Controller outage length starting exactly at [`ATTACK_START`]
    /// (0 = no outage) — the worst case: the control plane goes dark the
    /// moment the defense needs it.
    pub outage: Nanos,
}

impl ReactionKnobs {
    /// The ideal control plane: zero latency, no loss, no outage.
    pub fn ideal() -> Self {
        ReactionKnobs { latency: 0, loss_per_mille: 0, outage: 0 }
    }

    /// Pure-latency knobs.
    pub fn latency(latency: Nanos) -> Self {
        ReactionKnobs { latency, ..Self::ideal() }
    }

    /// The [`CtrlConfig`] this point runs with.
    pub fn to_ctrl(&self) -> CtrlConfig {
        let mut cfg =
            CtrlConfig::ideal().latency(self.latency).lossy(self.loss_per_mille as f64 / 1000.0);
        if self.outage > 0 {
            cfg = cfg.outage(ATTACK_START, ATTACK_START + self.outage);
        }
        cfg
    }
}

/// One measured point of the reaction sweep.
#[derive(Debug, Clone)]
pub struct ReactionPoint {
    /// The defense system.
    pub system: DefenseKind,
    /// The control-plane quality it ran under.
    pub knobs: ReactionKnobs,
    /// Attack start → sustained recovery to 90% of the pre-attack
    /// baseline, seconds; `None` = never recovered within the run.
    pub reaction_secs: Option<f64>,
    /// Average legitimate-user goodput over the whole run, bits/second.
    pub avg_user_bps: f64,
    /// Average attacker goodput over the whole run, bits/second.
    pub avg_attacker_bps: f64,
    /// Control messages retransmitted by the transport.
    pub control_retransmits: u64,
    /// Control messages dropped after exhausting retransmissions (or sent
    /// to a partitioned AS).
    pub control_lost: u64,
}

/// The systems the sweep compares: the two closed-loop defenses whose
/// reaction rides on the control plane, plus fair queuing as the
/// control-free baseline.
pub const SYSTEMS: [DefenseKind; 3] = [DefenseKind::NetFence, DefenseKind::StopIt, DefenseKind::Fq];

/// The default control-plane quality ladder: ideal, rising latency, heavy
/// loss, and an outage at the attack instant.
pub fn default_knobs() -> Vec<ReactionKnobs> {
    vec![
        ReactionKnobs::ideal(),
        ReactionKnobs::latency(100 * MILLI),
        ReactionKnobs::latency(2 * SEC),
        ReactionKnobs { latency: 100 * MILLI, loss_per_mille: 300, outage: 0 },
        ReactionKnobs { latency: 100 * MILLI, loss_per_mille: 0, outage: 10 * SEC },
    ]
}

/// The attack that engages `system`'s control loop.
///
/// NetFence suppresses an unwanted flood at the data path (unauthorized
/// requests are strictly rate limited with no control traffic), so it
/// faces the *colluding* flood: the colluder keeps echoing feedback and
/// only congestion policing — whose AS keys ride the control plane —
/// restores the users. StopIt's filter requests ride the control plane
/// against the *unwanted* flood (a colluding flood would fall back to its
/// control-free fair-queuing tier). FQ exchanges no control messages under
/// either attack and keeps the data-path baseline.
pub fn attack_for(system: DefenseKind) -> AttackTarget {
    match system {
        DefenseKind::NetFence => AttackTarget::Colluders { ases: 1 },
        DefenseKind::Tva | DefenseKind::StopIt | DefenseKind::Fq | DefenseKind::None => {
            AttackTarget::Victim
        }
    }
}

/// The per-sender bottleneck provisioning that makes `system`'s recovery
/// ride on its control loop.
///
/// StopIt carries a control-free per-source fair-queuing tier that alone
/// satisfies any user demanding less than the fair share — so its cell
/// provisions the bottleneck *below* the users' 50 kbps demand (30 kbps
/// per sender): until the victim's filter requests land and evict the
/// attackers, fair queuing cannot restore the users. NetFence polices
/// every sender toward the fair share, so its users must demand *less*
/// than it (100 kbps per sender); the same holds for the FQ baseline.
pub fn fair_share_for(system: DefenseKind) -> u64 {
    match system {
        DefenseKind::StopIt => 30_000,
        DefenseKind::NetFence | DefenseKind::Tva | DefenseKind::Fq | DefenseKind::None => 100_000,
    }
}

/// The reaction scenario: internet-scale transit-stub topology, one
/// demand-bounded user per stub AS (50 kbps CBR, flat baseline), the
/// remaining hosts 1 Mbps CBR attackers that all open fire at
/// [`ATTACK_START`] against [`attack_for`]`(system)` over a bottleneck
/// provisioned at [`fair_share_for`]`(system)` per sender. Goodput is
/// sampled every second.
pub fn reaction_spec(scale: &Scale, system: DefenseKind, knobs: &ReactionKnobs) -> ScenarioSpec {
    ScenarioSpec::internet(*scale, InternetShape::default())
        .named("reaction")
        .defense(system)
        .fair_share(fair_share_for(system))
        .legit_per_as(1)
        .users(TrafficSpec::cbr(50_000))
        .user_start(StartSchedule::staggered(10, 100 * MILLI))
        .attackers(TrafficSpec::cbr(1_000_000), attack_for(system))
        .attacker_start(StartSchedule::delayed(ATTACK_START))
        .control(knobs.to_ctrl())
        .sampled(SEC)
}

fn to_point(system: DefenseKind, knobs: ReactionKnobs, r: &Record) -> ReactionPoint {
    ReactionPoint {
        system,
        knobs,
        reaction_secs: r.reaction_secs(),
        avg_user_bps: r.avg_user_bps(),
        avg_attacker_bps: r.avg_attacker_bps(),
        control_retransmits: r.report.control_retransmits,
        control_lost: r.report.control_lost,
    }
}

/// Run one (system × control-plane quality) cell.
pub fn run_reaction_cell(
    scale: &Scale,
    system: DefenseKind,
    knobs: ReactionKnobs,
) -> ReactionPoint {
    let r = Runner::new(reaction_spec(scale, system, &knobs)).run();
    to_point(system, knobs, &r)
}

/// Run the full sweep (cells in parallel; point-major order: all systems
/// at the first knob setting, then all systems at the second, …).
pub fn run_reaction_sweep(
    scale: &Scale,
    systems: &[DefenseKind],
    knobs: &[ReactionKnobs],
) -> Vec<ReactionPoint> {
    SweepGrid::new(systems.to_vec(), knobs.to_vec())
        .run_auto(|system, k| reaction_spec(scale, system, k))
        .iter()
        .map(|c| to_point(c.system, c.point, &c.record))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { src_ases: 3, hosts_per_as: 3, sim_time: 30 * SEC, seed: 7 }
    }

    #[test]
    fn attack_start_and_samples_reach_the_record() {
        let r = Runner::new(reaction_spec(&tiny(), DefenseKind::Fq, &ReactionKnobs::ideal())).run();
        assert_eq!(r.attack_start, Some(ATTACK_START));
        assert_eq!(r.samples.len(), 30, "one sample per second");
        // Users were already sending before the attack.
        assert!(r.samples[7].user_bytes > 0);
        // Attackers delivered nothing before their delayed start.
        assert_eq!(r.samples[7].attacker_bytes, 0);
        assert!(r.samples.last().unwrap().attacker_bytes > 0);
    }

    #[test]
    fn fair_queuing_reacts_fast_regardless_of_control_latency() {
        // FQ exchanges no control messages: its reaction must not degrade
        // with control-plane latency.
        let ideal = run_reaction_cell(&tiny(), DefenseKind::Fq, ReactionKnobs::ideal());
        let slow = run_reaction_cell(&tiny(), DefenseKind::Fq, ReactionKnobs::latency(4 * SEC));
        let a = ideal.reaction_secs.expect("FQ recovers");
        let b = slow.reaction_secs.expect("FQ recovers under latency");
        assert_eq!(a, b, "control latency leaked into a control-free defense");
        assert_eq!(ideal.control_retransmits, 0);
        assert_eq!(ideal.control_lost, 0);
    }

    #[test]
    fn an_outage_at_attack_time_slows_stopit_down() {
        // StopIt installs filters via control messages; an outage covering
        // the attack instant delays them by the reconnect schedule.
        let healthy = run_reaction_cell(&tiny(), DefenseKind::StopIt, ReactionKnobs::ideal());
        let dark = run_reaction_cell(
            &tiny(),
            DefenseKind::StopIt,
            ReactionKnobs { latency: 0, loss_per_mille: 0, outage: 10 * SEC },
        );
        let h = healthy.reaction_secs.expect("StopIt recovers on a healthy control plane");
        match dark.reaction_secs {
            None => {} // never recovered within the run: strictly worse
            Some(d) => assert!(d >= h, "outage reaction {d} < healthy reaction {h}"),
        }
    }
}
