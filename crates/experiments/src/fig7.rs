//! Figure 7: router packet-processing micro-benchmarks.
//!
//! The paper benchmarks its Linux/Click prototype on Deterlab and reports
//! per-packet processing time (ns/pkt) at the bottleneck and access routers,
//! for request and regular packets, with and without an ongoing attack, and
//! compares against TVA+. This harness measures the same code paths of this
//! reproduction in userspace (software AES instead of AES-NI — see
//! `DESIGN.md`), so absolute numbers differ from the paper's 2010 Xeon
//! testbed while the relative structure (idle vs attack, access vs
//! bottleneck) is preserved.
//!
//! TVA+'s per-packet cost is modelled as one pre-capability MAC validation,
//! the dominant cost of TVA's fast path, using the same AES-CMAC primitive.

use std::time::Instant;

use netfence_core::prelude::*;
use netfence_core::{bottleneck::BottleneckLink, feedback};
use netfence_crypto::{full_mesh_exchange, AsKeyAgent, Cmac};

/// One row of the Figure 7 table.
#[derive(Debug, Clone)]
pub struct Fig7Row {
    /// "request" or "regular".
    pub packet_type: &'static str,
    /// "bottleneck" or "access".
    pub router_type: &'static str,
    /// "no attack" or "attack".
    pub condition: &'static str,
    /// Measured NetFence cost in nanoseconds per packet.
    pub netfence_ns: f64,
    /// Measured TVA+ (capability MAC check) cost in nanoseconds per packet.
    pub tva_ns: f64,
}

fn time_per_iter(iters: u64, f: impl FnMut(u64)) -> f64 {
    let mut f = f;
    // lint:allow(wall-clock): Figure 7 *is* a wall-clock microbench of per-packet crypto cost; the ns/op goes to the table, not a Record
    let start = Instant::now();
    for i in 0..iters {
        f(i);
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Build the fixture: an access router (AS 1), a bottleneck link (AS 2) and
/// the keys they share.
fn fixture() -> (AccessRouter, BottleneckLink, Cmac, FlowPair) {
    let agents = vec![AsKeyAgent::new(1, 101), AsKeyAgent::new(2, 202)];
    let mut tables = full_mesh_exchange(&agents);
    let t1 = tables.remove(0);
    let t2 = tables.remove(0);
    let mut access = AccessRouter::new(Config::default(), AsId(1), [9u8; 16], t1);
    access.register_link_as(LinkId(500), AsId(2));
    let kai = t2.get(1).unwrap().clone();
    let bl = BottleneckLink::new(LinkId(500), 10_000_000, t2, Config::default(), 0);
    let flow = FlowPair::new(HostId(0x0a000001), HostId(0x14000001));
    (access, bl, kai, flow)
}

/// Force the bottleneck into a monitoring cycle.
fn drive_into_mon(bl: &mut BottleneckLink) -> Nanos {
    let mut now = 0;
    while !bl.in_mon() {
        now += SEC;
        for i in 0..200 {
            bl.record_regular(1500, i % 5 == 0);
        }
        bl.tick(now);
    }
    now
}

/// The TVA+ stand-in: validate one capability MAC per packet.
fn tva_cost(iters: u64) -> f64 {
    let cmac = Cmac::new(&[0x42u8; 16]);
    let expected = cmac.mac32(b"capability:12345678");
    time_per_iter(iters, |_| {
        // black_box keeps the expected tag opaque so the verification is not
        // hoisted out of the loop.
        let ok = cmac.verify32(b"capability:12345678", std::hint::black_box(expected));
        assert!(ok);
    })
}

/// Run the micro-benchmarks. `iters` controls how many packets each cell
/// averages over (the Criterion bench uses its own measurement instead).
pub fn run_fig7(iters: u64) -> Vec<Fig7Row> {
    let mut rows = Vec::new();
    let tva = tva_cost(iters);

    // --- request packet, bottleneck router ---
    {
        // No attack: the bottleneck does not touch the packet at all.
        let (_, mut bl, _, flow) = fixture();
        let no_attack = time_per_iter(iters, |_| {
            let mut fb = Feedback::Nop { ts: 1, token: 1 };
            let _ = bl.update_feedback(SEC, flow, AsId(1), &mut fb);
        });
        // Attack: stamping L↓ into a 92-byte request packet.
        let (mut access, mut bl, _, flow) = fixture();
        let now = drive_into_mon(&mut bl);
        let mut header = NetFenceHeader::request(17, 1, Feedback::Nop { ts: 0, token: 0 });
        access.process_outbound(now, flow, &mut header, 92);
        let nop = header.presented;
        let attack = time_per_iter(iters, |_| {
            let mut fb = nop;
            let out = bl.update_feedback(now, flow, AsId(1), &mut fb);
            assert_ne!(out, netfence_core::bottleneck::StampOutcome::NoKey);
        });
        rows.push(Fig7Row {
            packet_type: "request",
            router_type: "bottleneck",
            condition: "no attack",
            netfence_ns: no_attack,
            tva_ns: tva,
        });
        rows.push(Fig7Row {
            packet_type: "request",
            router_type: "bottleneck",
            condition: "attack",
            netfence_ns: attack,
            tva_ns: tva,
        });
    }

    // --- request packet, access router ---
    {
        let (mut access, _, _, flow) = fixture();
        let cost = time_per_iter(iters, |i| {
            let mut header = NetFenceHeader::request(17, 0, Feedback::Nop { ts: 0, token: 0 });
            let _ = access.process_outbound(SEC + i, flow, &mut header, 92);
        });
        rows.push(Fig7Row {
            packet_type: "request",
            router_type: "access",
            condition: "any",
            netfence_ns: cost,
            tva_ns: tva,
        });
    }

    // --- regular packet, bottleneck router ---
    {
        let (mut access, mut bl, _, flow) = fixture();
        // No attack: untouched.
        let no_attack = time_per_iter(iters, |_| {
            let mut fb = Feedback::Nop { ts: 1, token: 1 };
            let _ = bl.update_feedback(SEC, flow, AsId(1), &mut fb);
        });
        let now = drive_into_mon(&mut bl);
        let mut header = NetFenceHeader::request(6, 1, Feedback::Nop { ts: 0, token: 0 });
        access.process_outbound(now, flow, &mut header, 92);
        let incr = feedback::stamp_incr(
            &mut netfence_crypto::TimeVaryingSecret::new([9u8; 16]),
            now,
            flow,
            LinkId(500),
        );
        let attack = time_per_iter(iters, |_| {
            let mut fb = incr;
            let _ = bl.update_feedback(now, flow, AsId(1), &mut fb);
        });
        rows.push(Fig7Row {
            packet_type: "regular",
            router_type: "bottleneck",
            condition: "no attack",
            netfence_ns: no_attack,
            tva_ns: tva,
        });
        rows.push(Fig7Row {
            packet_type: "regular",
            router_type: "bottleneck",
            condition: "attack",
            netfence_ns: attack,
            tva_ns: tva,
        });
    }

    // --- regular packet, access router ---
    {
        // No attack: validate returned nop feedback + stamp a fresh one.
        let (mut access, _, _, flow) = fixture();
        let mut header = NetFenceHeader::request(6, 0, Feedback::Nop { ts: 0, token: 0 });
        access.process_outbound(SEC, flow, &mut header, 92);
        let nop = header.presented;
        let no_attack = time_per_iter(iters, |_| {
            let mut h = NetFenceHeader::regular(6, nop, None);
            let _ = access.process_outbound(SEC, flow, &mut h, 1500);
        });

        // Attack: validate mon feedback, run the rate limiter, stamp L↑.
        let (mut access, mut bl, _, flow) = fixture();
        let now = drive_into_mon(&mut bl);
        let mut header = NetFenceHeader::request(6, 0, Feedback::Nop { ts: 0, token: 0 });
        access.process_outbound(now, flow, &mut header, 92);
        let mut fb = header.presented;
        bl.update_feedback(now, flow, AsId(1), &mut fb);
        // Keep presenting the freshly stamped L↑ the access router produces,
        // as a real sender would.
        let mut current = fb;
        let attack = time_per_iter(iters, |i| {
            let mut h = NetFenceHeader::regular(6, current, None);
            let v = access.process_outbound(now + i, flow, &mut h, 1500);
            if !matches!(v, AccessVerdict::Drop(_)) {
                current = h.presented;
            }
        });
        rows.push(Fig7Row {
            packet_type: "regular",
            router_type: "access",
            condition: "no attack",
            netfence_ns: no_attack,
            tva_ns: tva,
        });
        rows.push(Fig7Row {
            packet_type: "regular",
            router_type: "access",
            condition: "attack",
            netfence_ns: attack,
            tva_ns: tva,
        });
    }

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_produces_all_rows_and_sane_orderings() {
        let rows = run_fig7(2_000);
        assert_eq!(rows.len(), 7);
        let get = |p: &str, r: &str, c: &str| {
            rows.iter()
                .find(|x| x.packet_type == p && x.router_type == r && x.condition == c)
                .unwrap()
                .netfence_ns
        };
        // The bottleneck router does nothing outside an attack, so its
        // idle-time cost is far below its attack-time cost (which computes a
        // MAC).
        assert!(get("regular", "bottleneck", "no attack") < get("regular", "bottleneck", "attack"));
        assert!(get("request", "bottleneck", "no attack") < get("request", "bottleneck", "attack"));
        // Every measured cost is positive and far below 1 ms.
        for r in &rows {
            assert!(r.netfence_ns > 0.0 && r.netfence_ns < 1_000_000.0, "{r:?}");
            assert!(r.tva_ns > 0.0);
        }
    }
}
