//! # netfence-experiments
//!
//! Harnesses that regenerate every table and figure of the NetFence
//! evaluation (§6 of the paper) on top of the `netfence-sim` simulator and
//! the `netfence-systems` defense implementations. Each figure has a
//! library module (used by the integration tests and the Criterion benches)
//! and a binary (`cargo run -p netfence-experiments --bin figN`) that prints
//! the figure's rows/series as a plain-text table.
//!
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison produced by these harnesses.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod report;
pub mod scenario;

pub use scenario::{DefenseKind, Scale};
