//! # netfence-experiments
//!
//! The declarative experiment layer of the NetFence reproduction, plus the
//! harnesses that regenerate every table and figure of the paper's
//! evaluation (§6).
//!
//! ## The `ScenarioSpec` → `Runner` → `Record` API
//!
//! Every experiment is one declarative [`ScenarioSpec`] (topology, scale,
//! defense, per-role traffic, attacker strategy), executed by a
//! [`Runner`] that builds the network exactly once, instantiates the
//! defense through the unified [`DefenseSpec`] factory,
//! spawns role-tagged flows and returns a uniform [`Record`] with per-role
//! flow series and per-bottleneck statistics. Grids of (defense × sweep
//! point) cells run through [`SweepGrid`], optionally on several threads.
//!
//! ```
//! use netfence_experiments::prelude::*;
//!
//! let spec = ScenarioSpec::dumbbell(Scale::tiny())
//!     .defense(DefenseKind::NetFence)
//!     .fair_share(100_000)
//!     .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim);
//! let record = Runner::new(spec).run();
//! assert!(record.user_completion_ratio() >= 0.0);
//! ```
//!
//! ## Figure harnesses
//!
//! Each figure has a thin library module (a spec constructor plus a
//! `Record` → figure-point mapping, used by the integration tests and the
//! Criterion benches) and a binary (`cargo run -p netfence-experiments
//! --bin figN`) that prints the figure's rows as a plain-text table. See
//! `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! comparison.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chaos;
pub mod deployment;
pub mod fig10;
pub mod fig11;
pub mod fig13;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod reaction;
pub mod record;
pub mod report;
pub mod runner;
pub mod spec;
pub mod sweep;
pub mod topo;
pub mod topo_scale;
pub mod tournament;

pub use netfence_adversary::{AttackLoad, AttackStrategy, ShrewTiming, StrategyCtx};
pub use netfence_faults::{FaultKind, FaultPlan, FaultTarget, FaultWindow};
pub use record::{
    DefenseReport, FaultWindowRecord, GoodputSample, LinkStats, Record, Role, RoleSeries,
};
pub use runner::{Runner, TelemetryDump};
pub use spec::{
    AttackTarget, Bandwidth, DefenseKind, DefenseSpec, InternetShape, RoleSpec, Scale,
    ScenarioSpec, StartSchedule, Suppression, TopologySpec, TrafficSpec,
};
pub use sweep::{Cell, SweepGrid};

/// Commonly used re-exports for writing scenarios.
pub mod prelude {
    pub use crate::record::{
        DefenseReport, FaultWindowRecord, GoodputSample, LinkStats, Record, Role, RoleSeries,
    };
    pub use crate::runner::{Runner, TelemetryDump};
    pub use crate::spec::{
        netfence_config, AttackTarget, Bandwidth, DefenseContext, DefenseKind, DefenseSpec,
        InternetShape, RoleSpec, Scale, ScenarioSpec, StartSchedule, Suppression, SuppressionGroup,
        TopologySpec, TrafficSpec,
    };
    pub use crate::sweep::{Cell, SweepGrid};
    pub use netfence_adversary::{AttackLoad, AttackStrategy, ShrewTiming, StrategyCtx};
    pub use netfence_faults::{FaultKind, FaultPlan, FaultTarget, FaultWindow};
    pub use netfence_sim::deploy::{DeploymentSpec, Placement};
    pub use netfence_sim::prelude::{DropBudget, DropCause, EngineProfile, TelemetryConfig};
    pub use netfence_topo::{BuiltTopo, MultiBottleneckSpec, TopoGroup, TopoSpec, TransitStubSpec};
}
