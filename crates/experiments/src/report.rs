//! Small plain-text table formatting used by the experiment binaries, so
//! each harness prints the same rows/series the paper's figures report.

use crate::record::Record;

/// Render a table with a header row; columns are padded to the widest cell.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:width$}", c, width = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row));
        out.push('\n');
    }
    out
}

/// Format a bits-per-second value as kbps with one decimal.
pub fn kbps(bps: f64) -> String {
    format!("{:.1}", bps / 1000.0)
}

/// Format a fraction as a percentage.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Format seconds with two decimals.
pub fn secs2(s: f64) -> String {
    if s.is_nan() {
        "n/a".to_string()
    } else {
        format!("{s:.2}")
    }
}

/// Render a record's drop budget: one row per nonzero cause with the run
/// total and, when per-flow attribution found them, the user/attacker
/// split. The defense's budget (in the report) covers every drop in the
/// run; the role columns only cover drops attributable to a role flow, so
/// they may sum to less than the total.
pub fn drop_budget_table(record: &Record) -> String {
    let budget = &record.report.drop_budget;
    let mut user = netfence_sim::prelude::DropBudget::default();
    let mut attacker = netfence_sim::prelude::DropBudget::default();
    for role in &record.roles {
        match role.role {
            crate::record::Role::User => user.merge(&role.drops),
            crate::record::Role::Attacker => attacker.merge(&role.drops),
        }
    }
    let mut rows: Vec<Vec<String>> = budget
        .nonzero()
        .map(|(cause, n)| {
            vec![
                cause.label().to_string(),
                n.to_string(),
                user.get(cause).to_string(),
                attacker.get(cause).to_string(),
            ]
        })
        .collect();
    rows.push(vec![
        "total".to_string(),
        budget.total().to_string(),
        user.total().to_string(),
        attacker.total().to_string(),
    ]);
    render_table(&["cause", "drops", "users", "attackers"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["system", "value"],
            &[vec!["NetFence".into(), "1.0".into()], vec!["FQ".into(), "10.25".into()]],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("system"));
        assert!(lines[2].starts_with("NetFence"));
        // Columns align: "value" starts at the same offset in every row.
        let col = lines[0].find("value").unwrap();
        assert_eq!(&lines[2][col..col + 3], "1.0");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(kbps(123_456.0), "123.5");
        assert_eq!(pct(0.934), "93.4%");
        assert_eq!(secs2(1.2345), "1.23");
        assert_eq!(secs2(f64::NAN), "n/a");
    }

    #[test]
    fn drop_budget_table_lists_causes_and_total() {
        use crate::prelude::*;
        use netfence_sim::prelude::SEC;
        let spec = ScenarioSpec::dumbbell(Scale::tiny()).defense(DefenseKind::NetFence);
        let record = Runner::new(spec.sim_time(5 * SEC)).run();
        let table = drop_budget_table(&record);
        assert!(table.starts_with("cause"), "{table}");
        assert!(table.contains("total"), "{table}");
        // The table's total row is exactly the report's budget total.
        let last = table.lines().last().unwrap();
        let cells: Vec<&str> = last.split_whitespace().collect();
        assert_eq!(cells[0], "total");
        assert_eq!(cells[1], record.report.drop_budget.total().to_string(), "{table}");
    }
}
