//! Scenario example: adaptive attackers from `netfence-adversary` against a
//! self-defending NetFence victim, written against the declarative
//! `ScenarioSpec` → `Runner` → `Record` API.
//!
//! The same dumbbell and the same aggregate attack rate, but five different
//! strategies: a plain flood, a shrew pulsing on the rate limiter's AIMD
//! period, a rolling flood, a goodput-probing attacker that commits to the
//! defense's worst case, and a flash-crowd mimic. The interesting output is
//! the *worst row* — a defense is only as strong as its worst case.
//!
//! Run with: `cargo run --release --example adaptive_attack`

use netfence::experiments::prelude::*;
use netfence::sim::time::SEC;

fn main() {
    let mut scale = Scale::tiny();
    scale.sim_time = 60 * SEC;
    println!(
        "Simulating {} senders, NetFence with suppression, 5 attacker strategies, 60 s...",
        scale.senders()
    );
    let mut worst: Option<(&'static str, f64)> = None;
    for strategy in AttackStrategy::lineup(1_000_000) {
        let spec = ScenarioSpec::dumbbell(scale)
            .named("adaptive-attack")
            .defense_spec(DefenseSpec::new(DefenseKind::NetFence).with_suppression(Suppression::On))
            .fair_share(100_000)
            .legit_per_as(1)
            .users(TrafficSpec::cbr(50_000))
            .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: 1 })
            .attacker_start(StartSchedule::delayed(5 * SEC))
            .adversary(strategy)
            .sampled(SEC);
        let r = Runner::new(spec).run();
        let user = r.avg_user_bps();
        println!(
            "  {:<11} user goodput: {:>7.1} kbps   attacker goodput: {:>7.1} kbps   reaction: {}",
            strategy.label(),
            user / 1000.0,
            r.avg_attacker_bps() / 1000.0,
            match r.reaction_secs() {
                Some(s) => format!("{s:.1} s"),
                None => "never".to_string(),
            }
        );
        if worst.is_none_or(|(_, w)| user < w) {
            worst = Some((strategy.label(), user));
        }
    }
    if let Some((label, bps)) = worst {
        println!("\nWorst case: `{}` held users to {:.1} kbps.", label, bps / 1000.0);
    }
    println!("Full grid (both topologies, partial deployment): `cargo run --bin tournament`.");
}
