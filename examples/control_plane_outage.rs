//! Scenario example: what a control-plane outage costs a closed-loop
//! defense.
//!
//! StopIt blocks an unwanted flood by installing filters at the attackers'
//! access routers — but the filter requests travel over the control plane.
//! The bottleneck is provisioned *below* the users' demand (30 kbps per
//! sender vs 50 kbps CBR users), so StopIt's control-free fair-queuing
//! tier alone cannot restore the users: recovery waits for the filters.
//! The same delayed-attack scenario then runs under three control-plane
//! qualities (ideal, 100 ms latency, and a controller outage that starts
//! the moment the attack begins) and reports the defense *reaction time*:
//! attack start → legitimate goodput back above 90% of its pre-attack
//! baseline.
//!
//! Run with: `cargo run --release --example control_plane_outage`

use netfence::ctrl::prelude::*;
use netfence::experiments::prelude::*;
use netfence::sim::time::{Nanos, MILLI, SEC};

const ATTACK_START: Nanos = 8 * SEC;

fn spec(ctrl: CtrlConfig) -> ScenarioSpec {
    let scale = Scale { src_ases: 2, hosts_per_as: 3, sim_time: 48 * SEC, seed: 5 };
    ScenarioSpec::dumbbell(scale)
        .named("control-plane-outage")
        .defense(DefenseKind::StopIt)
        .fair_share(30_000)
        .legit_per_as(1)
        .users(TrafficSpec::cbr(50_000))
        .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim)
        .attacker_start(StartSchedule::delayed(ATTACK_START))
        .control(ctrl)
        .sampled(SEC)
}

fn main() {
    println!("StopIt vs an unwanted flood starting at {} s, 48 s simulated.\n", ATTACK_START / SEC);
    let cases = [
        ("ideal control plane", CtrlConfig::ideal()),
        ("100 ms latency", CtrlConfig::ideal().latency(100 * MILLI)),
        ("outage 8 s - 18 s", CtrlConfig::ideal().outage(ATTACK_START, ATTACK_START + 10 * SEC)),
    ];
    for (label, cfg) in cases {
        let r = Runner::new(spec(cfg)).run();
        let reaction = match r.reaction_secs() {
            Some(s) => format!("{s:>5.1} s"),
            None => "never".to_string(),
        };
        println!(
            "  {:<20} reaction: {}   user goodput: {:>5.1} kbps   control retx: {:>2}  lost: {:>2}",
            label,
            reaction,
            r.avg_user_bps() / 1000.0,
            r.report.control_retransmits,
            r.report.control_lost,
        );
    }
    println!(
        "\nThe outage covers the attack instant: the victim's filter requests only land\nonce sessions reconnect, so the flood runs unchecked for the whole dark window."
    );
}
