//! Scenario example: colluding sender-receiver pairs (the Figure 9 setting).
//!
//! Attackers pair with colluding receivers so capabilities/filters cannot
//! help; NetFence still guarantees the legitimate TCP user a fair share of
//! the bottleneck via per-(sender, bottleneck) rate limiting driven by
//! secure congestion policing feedback.
//!
//! Run with: `cargo run --release -p netfence-experiments --example colluding_attack`

use netfence_experiments::fig9::{run_fig9_cell, UserTraffic};
use netfence_experiments::{DefenseKind, Scale};
use netfence_sim::time::SEC;

fn main() {
    let mut scale = Scale::tiny();
    scale.sim_time = 120 * SEC;
    println!("Simulating {} senders (25% legitimate), colluding UDP floods, 120 s...", scale.senders());
    for system in [DefenseKind::None, DefenseKind::NetFence, DefenseKind::Fq] {
        let p = run_fig9_cell(&scale, system, UserTraffic::LongRunning, 100_000, 100_000);
        println!(
            "  {:<9} user/attacker throughput ratio: {:>5.2}   fairness index: {:.3}   utilization: {:>5.1}%",
            system.label(),
            p.throughput_ratio,
            p.fairness_index,
            p.utilization * 100.0
        );
    }
    println!("\nShape to expect (paper Fig. 9a): NetFence ratio near 1, undefended near 0.");
}
