//! Scenario example: colluding sender-receiver pairs (the Figure 9 setting),
//! written directly against the declarative `ScenarioSpec` → `Runner` →
//! `Record` API.
//!
//! Attackers pair with colluding receivers so capabilities/filters cannot
//! help; NetFence still guarantees the legitimate TCP user a fair share of
//! the bottleneck via per-(sender, bottleneck) rate limiting driven by
//! secure congestion policing feedback.
//!
//! Run with: `cargo run --release --example colluding_attack`

use netfence::experiments::prelude::*;
use netfence::sim::time::SEC;

fn main() {
    let mut scale = Scale::tiny();
    scale.sim_time = 120 * SEC;
    println!(
        "Simulating {} senders (25% legitimate), colluding UDP floods, 120 s...",
        scale.senders()
    );
    for system in [DefenseKind::None, DefenseKind::NetFence, DefenseKind::Fq] {
        let spec = ScenarioSpec::dumbbell(scale)
            .named("colluding-attack")
            .defense(system)
            .fair_share(100_000)
            .legit_fraction(0.25)
            .users(TrafficSpec::LongRunningTcp)
            .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: 4 });
        let r = Runner::new(spec).run();
        println!(
            "  {:<9} user/attacker throughput ratio: {:>5.2}   fairness index: {:.3}   utilization: {:>5.1}%",
            system.label(),
            r.throughput_ratio(),
            r.user_fairness(),
            r.bottleneck_utilization() * 100.0
        );
    }
    println!("\nShape to expect (paper Fig. 9a): NetFence ratio near 1, undefended near 0.");
}
