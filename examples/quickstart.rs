//! Quickstart: the NetFence protocol objects without any simulator.
//!
//! Walks through the full feedback life-cycle of §3.1 of the paper: a sender
//! requests, the access router stamps unforgeable `nop` feedback, a
//! congested bottleneck rewrites it to `L↓`, the receiver echoes it back,
//! and the access router then rate-limits the sender and adjusts the limit
//! with the robust AIMD rule.
//!
//! Run with: `cargo run --example quickstart`

use netfence_core::prelude::*;
use netfence_core::{bottleneck::BottleneckLink, config::Config};
use netfence_crypto::{full_mesh_exchange, AsKeyAgent};

fn main() {
    // Figure 3 parameters.
    let cfg = Config::default();
    println!("NetFence parameters (Figure 3):");
    println!(
        "  Ilim = {} s, w = {} s, Δ = {} kbps, δ = {}, p_th = {}",
        cfg.ilim / SEC,
        cfg.feedback_expiry / SEC,
        cfg.additive_increase / 1000,
        cfg.multiplicative_decrease,
        cfg.loss_threshold
    );

    // Two ASes establish Passport-style pairwise keys.
    let agents = vec![AsKeyAgent::new(1, 11), AsKeyAgent::new(2, 22)];
    let mut tables = full_mesh_exchange(&agents);
    let t_access = tables.remove(0);
    let t_transit = tables.remove(0);

    // AS 1 runs the access router, AS 2 owns the bottleneck link 500.
    let mut access = AccessRouter::new(cfg.clone(), AsId(1), [7; 16], t_access);
    access.register_link_as(LinkId(500), AsId(2));
    let mut bottleneck = BottleneckLink::new(LinkId(500), 10_000_000, t_transit, cfg.clone(), 0);

    let flow = FlowPair::new(HostId(0x0a000001), HostId(0x14000001));

    // Step 1-2: the sender sends a request packet; the access router stamps
    // nop feedback.
    let mut header = NetFenceHeader::request(6, 0, Feedback::Nop { ts: 0, token: 0 });
    let verdict = access.process_outbound(SEC, flow, &mut header, 92);
    println!("\nrequest packet -> {verdict:?}, presented = nop? {}", header.presented.is_nop());

    // Step 3: an attack drives the bottleneck into a monitoring cycle; it
    // rewrites the feedback to L↓.
    let mut now = SEC;
    while !bottleneck.in_mon() {
        now += SEC;
        for i in 0..200 {
            bottleneck.record_regular(1500, i % 5 == 0);
        }
        bottleneck.tick(now);
    }
    bottleneck.update_feedback(now, flow, AsId(1), &mut header.presented);
    println!("bottleneck in mon -> feedback is L↓? {}", header.presented.is_decr());

    // Step 4-6: the receiver returns the feedback; the sender presents it and
    // is rate limited; AIMD adjusts the limit each control interval.
    let echoed = header.presented;
    let mut regular = NetFenceHeader::regular(6, echoed, None);
    let verdict = access.process_outbound(now, flow, &mut regular, 1500);
    println!("regular packet presenting L↓ -> {verdict:?}");
    println!(
        "rate limiter installed: {} (limit {} kbps)",
        access.limiter_count(),
        access.rate_limit(flow.src, LinkId(500)).unwrap() / 1000
    );

    for k in 1..=5u64 {
        let adjustments = access.tick(now + k * cfg.ilim);
        for (key, what) in adjustments {
            println!(
                "  control interval {k}: limiter for link {} -> {:?}, limit now {} kbps",
                key.link.0,
                what,
                access.rate_limit(flow.src, key.link).unwrap() / 1000
            );
        }
    }
    println!("\nDone: this is the closed control loop the paper builds its fairness guarantee on.");
}
