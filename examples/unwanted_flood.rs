//! Scenario example: unwanted-traffic flooding (the Figure 8 setting).
//!
//! Attackers flood a victim web server; the victim identifies them and
//! withholds congestion policing feedback, turning it into a capability.
//! The legitimate user keeps fetching 20 kB pages with only a small delay.
//!
//! Run with: `cargo run --release -p netfence-experiments --example unwanted_flood`

use netfence_experiments::fig8::run_fig8_cell;
use netfence_experiments::{DefenseKind, Scale};

fn main() {
    let scale = Scale::tiny();
    println!("Simulating {} senders (representing 100K on a 10 Gbps link), 40 s...", scale.senders());
    for system in [DefenseKind::NetFence, DefenseKind::Tva, DefenseKind::StopIt, DefenseKind::Fq] {
        let p = run_fig8_cell(&scale, system, 100_000, 100_000);
        println!(
            "  {:<9} avg 20KB transfer: {:>6.2} s   completed: {:>5.1}%",
            system.label(),
            p.avg_transfer_secs,
            p.completion_ratio * 100.0
        );
    }
    println!("\nShape to expect (paper Fig. 8): StopIt fastest, TVA+ close, NetFence ~1s slower\n(request back-off), FQ degrades as attacker counts grow.");
}
