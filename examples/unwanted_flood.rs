//! Scenario example: unwanted-traffic flooding (the Figure 8 setting),
//! written directly against the declarative `ScenarioSpec` → `Runner` →
//! `Record` API — with the defense comparison executed as a parallel
//! `SweepGrid`.
//!
//! Attackers flood a victim web server; the victim identifies them and
//! withholds congestion policing feedback, turning it into a capability.
//! The legitimate user keeps fetching 20 kB pages with only a small delay.
//!
//! Run with: `cargo run --release --example unwanted_flood`

use netfence::experiments::prelude::*;
use netfence::sim::time::SEC;

fn main() {
    let scale = Scale::tiny();
    println!(
        "Simulating {} senders (representing 100K on a 10 Gbps link), 40 s...",
        scale.senders()
    );
    let grid = SweepGrid::new(DefenseKind::ALL.to_vec(), vec![100_000u64]);
    let cells = grid.run_auto(|system, &fair_share| {
        ScenarioSpec::dumbbell(scale)
            .named("unwanted-flood")
            .defense(system)
            .fair_share(fair_share)
            .legit_per_as(1)
            .users(TrafficSpec::repeated_file(20_000, 5 * SEC))
            .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Victim)
    });
    for cell in &cells {
        println!(
            "  {:<9} avg 20KB transfer: {:>6.2} s   completed: {:>5.1}%",
            cell.system.label(),
            cell.record.avg_user_transfer_secs().unwrap_or(f64::NAN),
            cell.record.user_completion_ratio() * 100.0
        );
    }
    println!(
        "\nShape to expect (paper Fig. 8): StopIt fastest, TVA+ close, NetFence ~1s slower\n(request back-off), FQ degrades as attacker counts grow."
    );
}
