//! # netfence
//!
//! Facade crate for the NetFence (SIGCOMM 2010) reproduction workspace. It
//! re-exports the sub-crates under stable names and hosts the
//! repository-level integration tests (`tests/`) and runnable examples
//! (`examples/`).
//!
//! | Crate | Contents |
//! |---|---|
//! | [`core`] | Sans-I/O protocol state machines (feedback, AIMD, policing) |
//! | [`crypto`] | Software AES-128, AES-CMAC, Passport-style key exchange |
//! | [`sim`] | Deterministic packet-level discrete-event simulator |
//! | [`topo`] | Internet-scale topology generation (`TopoSpec` → `BuiltTopo`) |
//! | [`ctrl`] | Asynchronous control-plane transport (latency, loss, outages, TTL'd rules) |
//! | [`adversary`] | Adaptive attacker strategies (shrew, rolling, probe, flash-mimic agents) |
//! | [`systems`] | NetFence / TVA+ / StopIt / FQ bound to the simulator |
//! | [`faults`] | Declarative, deterministic fault plans (chaos engine) |
//! | [`experiments`] | Declarative `ScenarioSpec` → `Runner` → `Record` API |
//!
//! Quickstart — run a scenario through the declarative API:
//!
//! ```
//! use netfence::experiments::prelude::*;
//!
//! let spec = ScenarioSpec::dumbbell(Scale::tiny())
//!     .defense(DefenseKind::NetFence)
//!     .fair_share(100_000)
//!     .attackers(TrafficSpec::cbr(1_000_000), AttackTarget::Colluders { ases: 2 });
//! let record = Runner::new(spec).run();
//! assert!(record.throughput_ratio() > 0.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use netfence_adversary as adversary;
pub use netfence_core as core;
pub use netfence_crypto as crypto;
pub use netfence_ctrl as ctrl;
pub use netfence_experiments as experiments;
pub use netfence_faults as faults;
pub use netfence_sim as sim;
pub use netfence_systems as systems;
pub use netfence_topo as topo;
